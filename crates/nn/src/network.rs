//! A CNN as a chain of layers (paper Fig. 1), with forward, traced forward
//! (per-layer activations, needed both for backprop and for the per-layer
//! verification of the dataflow accelerator) and backward passes.

use crate::layer::{ConvGrads, Layer, LinearGrads};
use dfcnn_tensor::{Shape3, Tensor1, Tensor3};

/// A feed-forward network: layers applied in sequence.
#[derive(Clone, Debug, Default)]
pub struct Network {
    layers: Vec<Layer>,
}

/// Per-layer gradient storage produced by [`Network::backward`].
#[derive(Clone, Debug)]
pub enum LayerGrads {
    /// Gradients for a convolutional layer.
    Conv(ConvGrads),
    /// Gradients for a linear layer.
    Linear(LinearGrads),
    /// Layer without trainable parameters.
    None,
}

impl Network {
    /// Empty network.
    pub fn new() -> Self {
        Network { layers: Vec::new() }
    }

    /// Append a layer, checking shape compatibility with the previous one.
    pub fn push(&mut self, layer: Layer) {
        if let Some(prev) = self.layers.last() {
            assert_eq!(
                prev.output_shape(),
                layer.input_shape(),
                "layer {} input {} does not match previous output {}",
                self.layers.len(),
                layer.input_shape(),
                prev.output_shape()
            );
        }
        self.layers.push(layer);
    }

    /// Builder-style [`Network::push`].
    pub fn with(mut self, layer: Layer) -> Self {
        self.push(layer);
        self
    }

    /// Append a layer *without* the chain-shape check.
    ///
    /// Fork/join graph designs store their layers here in topological
    /// order, where adjacent entries need not connect (a skip path's
    /// scale-shift sits between two conv layers it is not chained to).
    /// A network built this way is a layer *container*: the chain-walking
    /// passes ([`Network::forward`], [`Network::forward_trace`],
    /// [`Network::backward`]) must not be used on it — the graph's own
    /// topology drives evaluation instead.
    pub fn push_unchecked(&mut self, layer: Layer) {
        self.layers.push(layer);
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable layer access (used by the optimiser).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Number of layers — the quantity Fig. 6's convergence point is
    /// measured against ("the size of the batch of images becomes greater
    /// than the total number of layers of the CNN").
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The input shape the first layer expects.
    pub fn input_shape(&self) -> Shape3 {
        self.layers
            .first()
            .expect("network has no layers")
            .input_shape()
    }

    /// The output shape of the last layer.
    pub fn output_shape(&self) -> Shape3 {
        self.layers
            .last()
            .expect("network has no layers")
            .output_shape()
    }

    /// Forward pass through all layers.
    pub fn forward(&self, input: &Tensor3<f32>) -> Tensor3<f32> {
        let mut cur = input.clone();
        for l in &self.layers {
            cur = l.forward(&cur);
        }
        cur
    }

    /// Forward pass recording every intermediate activation.
    ///
    /// `result[0]` is the input, `result[i]` the output of layer `i-1`.
    pub fn forward_trace(&self, input: &Tensor3<f32>) -> Vec<Tensor3<f32>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(input.clone());
        for l in &self.layers {
            let next = l.forward(acts.last().unwrap());
            acts.push(next);
        }
        acts
    }

    /// Classify: forward then argmax over the final `1 × 1 × K` volume.
    pub fn predict(&self, input: &Tensor3<f32>) -> usize {
        self.forward(input).flatten().argmax()
    }

    /// Zeroed gradient containers for every layer.
    pub fn zero_grads(&self) -> Vec<LayerGrads> {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Conv(c) => LayerGrads::Conv(c.zero_grads()),
                Layer::Linear(fc) => LayerGrads::Linear(fc.zero_grads()),
                _ => LayerGrads::None,
            })
            .collect()
    }

    /// Backward pass from `grad_loss` (gradient of the loss w.r.t. the
    /// network output), given the activations from [`Network::forward_trace`].
    /// Parameter gradients are accumulated into `grads`.
    pub fn backward(
        &self,
        trace: &[Tensor3<f32>],
        grad_loss: &Tensor3<f32>,
        grads: &mut [LayerGrads],
    ) {
        assert_eq!(trace.len(), self.layers.len() + 1, "trace length mismatch");
        assert_eq!(grads.len(), self.layers.len(), "grads length mismatch");
        let mut g = grad_loss.clone();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let input = &trace[i];
            let output = &trace[i + 1];
            g = match (layer, &mut grads[i]) {
                (Layer::Conv(l), LayerGrads::Conv(lg)) => l.backward(input, output, &g, lg),
                (Layer::Linear(l), LayerGrads::Linear(lg)) => l.backward(input, output, &g, lg),
                (Layer::Pool(l), _) => l.backward(input, &g),
                (Layer::Flatten(l), _) => l.backward(&g),
                (Layer::LogSoftmax(l), _) => l.backward(output, &g),
                (Layer::ScaleShift(l), _) => l.backward(&g),
                _ => unreachable!("gradient container does not match layer"),
            };
        }
    }

    /// Plain SGD update: `p -= lr * g` for every parameter.
    pub fn apply_grads(&mut self, grads: &[LayerGrads], lr: f32) {
        for (layer, g) in self.layers.iter_mut().zip(grads.iter()) {
            match (layer, g) {
                (Layer::Conv(l), LayerGrads::Conv(lg)) => l.apply_grads(lg, lr),
                (Layer::Linear(l), LayerGrads::Linear(lg)) => l.apply_grads(lg, lr),
                _ => {}
            }
        }
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Conv(c) => c.filters().len() + c.bias().len(),
                Layer::Linear(fc) => fc.weights().len() + fc.bias().len(),
                _ => 0,
            })
            .sum()
    }

    /// Final-layer class scores as a flat vector.
    pub fn scores(&self, input: &Tensor3<f32>) -> Tensor1<f32> {
        self.forward(input).flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::Activation;
    use crate::layer::{Conv2d, Flatten, Linear, LogSoftmax, Pool2d, PoolKind};
    use dfcnn_tensor::{ConvGeometry, Tensor4};

    fn tiny_net() -> Network {
        // 4x4x1 -> conv2x2(2 maps) -> 3x3x2 -> flatten -> linear -> softmax
        let geo = ConvGeometry::new(Shape3::new(4, 4, 1), 2, 2, 1, 0);
        let f = Tensor4::from_fn(2, 2, 2, 1, |k, y, x, _| ((k + y + x) as f32) * 0.1);
        let conv = Conv2d::new(geo, f, Tensor1::zeros(2), Activation::Tanh);
        let flat = Flatten::new(Shape3::new(3, 3, 2));
        let w = Tensor4::from_fn(3, 1, 1, 18, |j, _, _, i| ((j * 18 + i) as f32) * 0.01 - 0.2);
        let fc = Linear::new(w, Tensor1::zeros(3), Activation::Identity);
        Network::new()
            .with(Layer::Conv(conv))
            .with(Layer::Flatten(flat))
            .with(Layer::Linear(fc))
            .with(Layer::LogSoftmax(LogSoftmax::new(3)))
    }

    #[test]
    fn shapes_chain() {
        let n = tiny_net();
        assert_eq!(n.depth(), 4);
        assert_eq!(n.input_shape(), Shape3::new(4, 4, 1));
        assert_eq!(n.output_shape(), Shape3::new(1, 1, 3));
    }

    #[test]
    fn forward_trace_consistent_with_forward() {
        let n = tiny_net();
        let x = Tensor3::from_fn(Shape3::new(4, 4, 1), |y, xx, _| ((y * 4 + xx) as f32) * 0.1);
        let trace = n.forward_trace(&x);
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.last().unwrap(), &n.forward(&x));
    }

    #[test]
    #[should_panic(expected = "does not match previous output")]
    fn shape_mismatch_rejected() {
        let mut n = tiny_net();
        n.push(Layer::LogSoftmax(LogSoftmax::new(5)));
    }

    #[test]
    fn param_count() {
        let n = tiny_net();
        // conv: 2*2*2*1 + 2 = 10; fc: 3*18 + 3 = 57
        assert_eq!(n.param_count(), 67);
    }

    #[test]
    fn end_to_end_gradient_check() {
        let n = tiny_net();
        let x = Tensor3::from_fn(Shape3::new(4, 4, 1), |y, xx, _| {
            ((y + xx) as f32) * 0.2 - 0.5
        });
        let trace = n.forward_trace(&x);
        // NLL loss for target class 1: L = -y_1
        let mut gl = Tensor3::zeros(Shape3::new(1, 1, 3));
        gl.set(0, 0, 1, -1.0);
        let mut grads = n.zero_grads();
        n.backward(&trace, &gl, &mut grads);

        // numeric check on one conv weight and one fc weight
        let h = 1e-3f32;
        let loss = |net: &Network| -net.forward(&x).get(0, 0, 1);
        if let LayerGrads::Conv(cg) = &grads[0] {
            let mut np = n.clone();
            if let Layer::Conv(c) = &mut np.layers_mut()[0] {
                *c.filters_mut().get_mut(1, 0, 1, 0) += h;
            }
            let mut nm = n.clone();
            if let Layer::Conv(c) = &mut nm.layers_mut()[0] {
                *c.filters_mut().get_mut(1, 0, 1, 0) -= h;
            }
            let num = (loss(&np) - loss(&nm)) / (2.0 * h);
            let ana = cg.filters.get(1, 0, 1, 0);
            assert!((num - ana).abs() < 1e-2, "conv grad: num={num} ana={ana}");
        } else {
            panic!("expected conv grads");
        }
        if let LayerGrads::Linear(lg) = &grads[2] {
            let mut np = n.clone();
            if let Layer::Linear(l) = &mut np.layers_mut()[2] {
                *l.weights_mut().get_mut(2, 0, 0, 7) += h;
            }
            let mut nm = n.clone();
            if let Layer::Linear(l) = &mut nm.layers_mut()[2] {
                *l.weights_mut().get_mut(2, 0, 0, 7) -= h;
            }
            let num = (loss(&np) - loss(&nm)) / (2.0 * h);
            let ana = lg.weights.get(2, 0, 0, 7);
            assert!((num - ana).abs() < 1e-2, "fc grad: num={num} ana={ana}");
        } else {
            panic!("expected linear grads");
        }
    }

    #[test]
    fn pool_backward_participates() {
        // conv -> pool -> flatten -> linear; just ensure backward runs and
        // produces finite gradients through the pooling layer.
        let geo = ConvGeometry::new(Shape3::new(4, 4, 1), 1, 1, 1, 0);
        let mut f = Tensor4::zeros(1, 1, 1, 1);
        f.set(0, 0, 0, 0, 1.0);
        let conv = Conv2d::new(geo, f, Tensor1::zeros(1), Activation::Identity);
        let pool = Pool2d::new(
            ConvGeometry::new(Shape3::new(4, 4, 1), 2, 2, 2, 0),
            PoolKind::Max,
        );
        let w = Tensor4::from_fn(2, 1, 1, 4, |j, _, _, i| (j + i) as f32 * 0.1);
        let fc = Linear::new(w, Tensor1::zeros(2), Activation::Identity);
        let n = Network::new()
            .with(Layer::Conv(conv))
            .with(Layer::Pool(pool))
            .with(Layer::Flatten(Flatten::new(Shape3::new(2, 2, 1))))
            .with(Layer::Linear(fc));
        let x = Tensor3::from_fn(Shape3::new(4, 4, 1), |y, xx, _| (y * 4 + xx) as f32);
        let trace = n.forward_trace(&x);
        let gl = Tensor3::full(Shape3::new(1, 1, 2), 1.0);
        let mut grads = n.zero_grads();
        n.backward(&trace, &gl, &mut grads);
        if let LayerGrads::Conv(cg) = &grads[0] {
            assert!(cg.filters.as_slice().iter().all(|v| v.is_finite()));
            assert!(cg.filters.as_slice().iter().any(|&v| v != 0.0));
        }
    }
}
