/root/repo/target/release/deps/dfcnn_datasets-88627a9cc325f01b.d: crates/datasets/src/lib.rs crates/datasets/src/batch.rs crates/datasets/src/cifar.rs crates/datasets/src/usps.rs

/root/repo/target/release/deps/dfcnn_datasets-88627a9cc325f01b: crates/datasets/src/lib.rs crates/datasets/src/batch.rs crates/datasets/src/cifar.rs crates/datasets/src/usps.rs

crates/datasets/src/lib.rs:
crates/datasets/src/batch.rs:
crates/datasets/src/cifar.rs:
crates/datasets/src/usps.rs:
