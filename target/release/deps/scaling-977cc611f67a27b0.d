/root/repo/target/release/deps/scaling-977cc611f67a27b0.d: crates/bench/src/bin/scaling.rs

/root/repo/target/release/deps/scaling-977cc611f67a27b0: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
