//! Offline drop-in for the subset of the `rand` 0.8 API this workspace
//! uses. The build environment has no registry access, so the workspace
//! vendors the handful of primitives it needs: the `RngCore` / `Rng` /
//! `SeedableRng` traits, uniform range sampling (`gen_range`,
//! `distributions::Uniform`) and Fisher–Yates shuffling
//! (`seq::SliceRandom`).
//!
//! The statistical machinery is deliberately simple (modulo sampling for
//! integers, 24/53-bit mantissa scaling for floats); everything in the
//! repository only relies on the streams being deterministic per seed,
//! never on matching upstream `rand` bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// Core random source: everything is derived from `next_u32`/`next_u64`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling helpers, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform boolean with the given probability of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (`ChaCha8Rng::seed_from_u64(..)` and friends).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit seed into a full seed with splitmix64, like
    /// upstream `rand`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, byte) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = byte;
            }
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range-like arguments accepted by [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty, $unit:ident);*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (self.end - self.start) * $unit(rng)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                lo + (hi - lo) * $unit(rng)
            }
        }
    )*};
}
float_sample_range!(f32, unit_f32; f64, unit_f64);

pub mod distributions {
    //! `Uniform` / `Distribution`, the only distribution machinery used.

    use super::{RngCore, SampleRange};

    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)` or `[lo, hi]`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
        inclusive: bool,
    }

    impl<T: Copy> Uniform<T> {
        pub fn new(lo: T, hi: T) -> Self {
            Uniform {
                lo,
                hi,
                inclusive: false,
            }
        }

        pub fn new_inclusive(lo: T, hi: T) -> Self {
            Uniform {
                lo,
                hi,
                inclusive: true,
            }
        }
    }

    impl<T: Copy> Distribution<T> for Uniform<T>
    where
        std::ops::Range<T>: SampleRange<Output = T>,
        std::ops::RangeInclusive<T>: SampleRange<Output = T>,
    {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            if self.inclusive {
                (self.lo..=self.hi).sample_from(rng)
            } else {
                (self.lo..self.hi).sample_from(rng)
            }
        }
    }
}

pub mod seq {
    //! Slice shuffling (`SliceRandom::shuffle`).

    use super::{RngCore, SampleRange};

    pub trait SliceRandom {
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn uniform_inclusive_hits_bounds_region() {
        let mut rng = Lcg(9);
        let d = Uniform::new_inclusive(-1.0f32, 1.0);
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Lcg(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
