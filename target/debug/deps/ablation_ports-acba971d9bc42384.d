/root/repo/target/debug/deps/ablation_ports-acba971d9bc42384.d: crates/bench/src/bin/ablation_ports.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ports-acba971d9bc42384.rmeta: crates/bench/src/bin/ablation_ports.rs Cargo.toml

crates/bench/src/bin/ablation_ports.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
