/root/repo/target/release/examples/design_explorer-5397d36cbf1af590.d: examples/design_explorer.rs

/root/repo/target/release/examples/design_explorer-5397d36cbf1af590: examples/design_explorer.rs

examples/design_explorer.rs:
