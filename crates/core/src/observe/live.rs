//! Live telemetry: lock-free in-flight metrics, sampled snapshots and
//! streaming exporters.
//!
//! PR 4's flight recorder answers *where did the time go* only after a
//! run completes. This module makes the same counters observable **while
//! the run executes**: every engine (dense sim, event sim, threaded host)
//! can be handed a [`LiveMetrics`] handle — one lock-free [`MetricCell`]
//! per stage/actor — and bumps it from the hot path with relaxed atomic
//! adds. A [`Sampler`] turns the monotone cumulative counters into
//! periodic [`MetricsSnapshot`] *deltas* on a configurable tick, and two
//! exporters stream them out: Prometheus-style text exposition
//! ([`LiveMetrics::render_prometheus`]) and a JSONL time-series
//! ([`snapshots_to_jsonl`]) that also feeds the Perfetto counter tracks
//! ([`crate::trace::Trace::to_chrome_json_with_metrics`]).
//!
//! # The reconciliation invariant
//!
//! Telemetry is only trustworthy if it cannot drift from the post-hoc
//! truth, so the cells are written with the *same* values the flight
//! recorder accumulates — the simulator mirrors every
//! [`crate::trace::Stall`] classification cycle-for-cycle, and the
//! threaded engine's workers record the identical measured `u64` into
//! both the cell and their [`IntervalStats`]. Consequently, for any run:
//!
//! * summing all snapshot deltas per stage reproduces the final
//!   [`crate::trace::ActorStallStats`] counters (and therefore the
//!   [`crate::observe::RunReport`]) **exactly** — no rounding, no
//!   sampling loss;
//! * cumulative cell totals equal the threaded engine's
//!   [`crate::exec::StageProfile`] totals exactly.
//!
//! `tests/live_telemetry.rs` pins both, on the paper test cases and on
//! the random-design corpus.
//!
//! One caveat inherited from the event-driven scheduler: sleeping actors
//! are billed lazily (back-fill at the next tick), so a *mid-run*
//! snapshot can lag the dense sweep's view of the same cycle. Only the
//! sum of all deltas — equivalently, the final cumulative totals — is
//! scheduler-independent.
//!
//! # Memory ordering
//!
//! All cell operations use `Ordering::Relaxed`: each counter is
//! individually monotone, samplers only ever read (possibly slightly
//! stale) points on that monotone staircase, and exact reconciliation is
//! read after the run's threads have joined — a happens-before edge that
//! makes the final totals precise without any fences in the hot path.

use crate::trace::{bucket_of, IntervalStats, Stall};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Schema version stamped into every serialised observability record
/// ([`MetricsSnapshot`], [`crate::observe::RunReport`],
/// [`crate::observe::DriftReport`]), so exporter consumers can evolve
/// safely.
pub const SCHEMA_VERSION: u32 = 1;

/// The time unit a telemetry source counts in: the cycle-accurate
/// simulator bills simulated **cycles**, the threaded host engine bills
/// wall-clock **nanoseconds**. Carried in every snapshot so exporters can
/// label axes without guessing the producer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricUnit {
    /// Simulated fabric cycles (cycle simulator, both schedulers).
    Cycles,
    /// Wall-clock nanoseconds (threaded host engine).
    Nanos,
}

impl MetricUnit {
    /// Lower-case label for exposition formats.
    pub fn label(&self) -> &'static str {
        match self {
            MetricUnit::Cycles => "cycles",
            MetricUnit::Nanos => "ns",
        }
    }
}

/// A point-in-time copy of one cell's cumulative counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellCounters {
    /// Work items completed: compute initiations in the simulator, whole
    /// images in the threaded host engine.
    pub items: u64,
    /// Time spent doing work (`Stall::Computing` cycles / worker busy ns).
    pub service: u64,
    /// Time blocked waiting for input (`Stall::Starved` / queue wait).
    pub queue_wait: u64,
    /// Time blocked pushing output (`Stall::Backpressured` / send wait).
    pub send_wait: u64,
    /// Time with nothing to do (`Stall::Idle`; 0 on the host engine).
    pub idle: u64,
}

impl CellCounters {
    fn delta_since(&self, last: &CellCounters) -> CellCounters {
        CellCounters {
            items: self.items - last.items,
            service: self.service - last.service,
            queue_wait: self.queue_wait - last.queue_wait,
            send_wait: self.send_wait - last.send_wait,
            idle: self.idle - last.idle,
        }
    }

    fn accumulate(&mut self, d: &CellCounters) {
        self.items += d.items;
        self.service += d.service;
        self.queue_wait += d.queue_wait;
        self.send_wait += d.send_wait;
        self.idle += d.idle;
    }
}

/// One stage's (or actor's) lock-free metric cell: monotone atomic
/// counters plus a fixed 64-bucket power-of-two interval histogram — the
/// same bucket scheme as [`IntervalStats`], so live quantiles and
/// post-hoc quantiles agree bit-for-bit. All writes are single relaxed
/// `fetch_add`s (plus a `fetch_min`/`fetch_max` pair per interval), cheap
/// enough for every engine's hot path.
#[derive(Debug)]
pub struct MetricCell {
    items: AtomicU64,
    service: AtomicU64,
    queue_wait: AtomicU64,
    send_wait: AtomicU64,
    idle: AtomicU64,
    int_count: AtomicU64,
    int_total: AtomicU64,
    int_max: AtomicU64,
    /// `u64::MAX` until the first interval lands.
    int_min: AtomicU64,
    int_buckets: [AtomicU64; 64],
}

impl MetricCell {
    fn new() -> Self {
        MetricCell {
            items: AtomicU64::new(0),
            service: AtomicU64::new(0),
            queue_wait: AtomicU64::new(0),
            send_wait: AtomicU64::new(0),
            idle: AtomicU64::new(0),
            int_count: AtomicU64::new(0),
            int_total: AtomicU64::new(0),
            int_max: AtomicU64::new(0),
            int_min: AtomicU64::new(u64::MAX),
            int_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Count `n` completed work items (initiations / images).
    #[inline]
    pub fn add_items(&self, n: u64) {
        self.items.fetch_add(n, Ordering::Relaxed);
    }

    /// Bill `n` units of service time (busy compute).
    #[inline]
    pub fn add_service(&self, n: u64) {
        self.service.fetch_add(n, Ordering::Relaxed);
    }

    /// Bill `n` units blocked waiting for input.
    #[inline]
    pub fn add_queue_wait(&self, n: u64) {
        self.queue_wait.fetch_add(n, Ordering::Relaxed);
    }

    /// Bill `n` units blocked pushing output downstream.
    #[inline]
    pub fn add_send_wait(&self, n: u64) {
        self.send_wait.fetch_add(n, Ordering::Relaxed);
    }

    /// Bill `n` units with nothing to do.
    #[inline]
    pub fn add_idle(&self, n: u64) {
        self.idle.fetch_add(n, Ordering::Relaxed);
    }

    /// Bill `n` units of the simulator's stall taxonomy — the mapping the
    /// flight recorder mirrors: `Computing → service`,
    /// `Starved → queue_wait`, `Backpressured → send_wait`, `Idle → idle`.
    #[inline]
    pub fn add_stall(&self, class: Stall, n: u64) {
        match class {
            Stall::Computing => self.add_service(n),
            Stall::Starved(_) => self.add_queue_wait(n),
            Stall::Backpressured(_) => self.add_send_wait(n),
            Stall::Idle => self.add_idle(n),
        }
    }

    /// Record one measured interval (inter-initiation gap in cycles, or
    /// per-image service time in ns) into the fixed-bucket histogram.
    #[inline]
    pub fn record_interval(&self, v: u64) {
        self.int_count.fetch_add(1, Ordering::Relaxed);
        self.int_total.fetch_add(v, Ordering::Relaxed);
        self.int_max.fetch_max(v, Ordering::Relaxed);
        self.int_min.fetch_min(v, Ordering::Relaxed);
        self.int_buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the cumulative counters.
    pub fn counters(&self) -> CellCounters {
        CellCounters {
            items: self.items.load(Ordering::Relaxed),
            service: self.service.load(Ordering::Relaxed),
            queue_wait: self.queue_wait.load(Ordering::Relaxed),
            send_wait: self.send_wait.load(Ordering::Relaxed),
            idle: self.idle.load(Ordering::Relaxed),
        }
    }

    /// Fold the live histogram back into an [`IntervalStats`], reusing
    /// its quantile machinery (the buckets are bit-compatible).
    pub fn interval_stats(&self) -> IntervalStats {
        let count = self.int_count.load(Ordering::Relaxed);
        let min = self.int_min.load(Ordering::Relaxed);
        IntervalStats::from_raw(
            count,
            self.int_total.load(Ordering::Relaxed),
            self.int_max.load(Ordering::Relaxed),
            if count == 0 { 0 } else { min },
            std::array::from_fn(|b| self.int_buckets[b].load(Ordering::Relaxed)),
        )
    }
}

/// The shared metrics plane of one engine instance: one named
/// [`MetricCell`] per stage/actor, in pipeline/actor order. `Sync` by
/// construction (all state is atomic), handed around as an `Arc` so
/// samplers, exporters and the engine observe the same cells
/// concurrently.
#[derive(Debug)]
pub struct LiveMetrics {
    unit: MetricUnit,
    names: Vec<String>,
    cells: Vec<MetricCell>,
}

impl LiveMetrics {
    /// A fresh metrics plane with one zeroed cell per name.
    pub fn new(unit: MetricUnit, names: Vec<String>) -> Arc<Self> {
        let cells = names.iter().map(|_| MetricCell::new()).collect();
        Arc::new(LiveMetrics { unit, names, cells })
    }

    /// The unit every counter in this plane is billed in.
    pub fn unit(&self) -> MetricUnit {
        self.unit
    }

    /// Number of cells (== stages/actors).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plane has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Stage/actor names, in cell order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The cell of stage/actor `i`.
    pub fn cell(&self, i: usize) -> &MetricCell {
        &self.cells[i]
    }

    /// Cumulative counters of every cell, in cell order.
    pub fn totals(&self) -> Vec<CellCounters> {
        self.cells.iter().map(|c| c.counters()).collect()
    }

    /// Prometheus-style text exposition of the *cumulative* counters —
    /// the pull-model exporter: serve this string from a `/metrics`
    /// endpoint (or just print it) at any point during a run.
    pub fn render_prometheus(&self) -> String {
        let unit = self.unit.label();
        let mut out = String::new();
        type Series = (&'static str, fn(&CellCounters) -> u64, &'static str);
        let series: [Series; 5] = [
            (
                "dfcnn_stage_items_total",
                |c| c.items,
                "Work items completed (initiations or images)",
            ),
            (
                "dfcnn_stage_busy_total",
                |c| c.service,
                "Time spent computing",
            ),
            (
                "dfcnn_stage_queue_wait_total",
                |c| c.queue_wait,
                "Time blocked waiting for input",
            ),
            (
                "dfcnn_stage_send_wait_total",
                |c| c.send_wait,
                "Time blocked pushing output downstream",
            ),
            (
                "dfcnn_stage_idle_total",
                |c| c.idle,
                "Time with nothing to do",
            ),
        ];
        let totals = self.totals();
        for (name, get, help) in series {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for (stage, c) in self.names.iter().zip(&totals) {
                out.push_str(&format!(
                    "{name}{{stage=\"{stage}\",unit=\"{unit}\"}} {}\n",
                    get(c)
                ));
            }
        }
        out.push_str(
            "# HELP dfcnn_stage_interval_p99 p99 of the measured stage interval\n\
             # TYPE dfcnn_stage_interval_p99 gauge\n",
        );
        for (stage, cell) in self.names.iter().zip(&self.cells) {
            out.push_str(&format!(
                "dfcnn_stage_interval_p99{{stage=\"{stage}\",unit=\"{unit}\"}} {}\n",
                cell.interval_stats().p99_ns()
            ));
        }
        out
    }
}

/// One stage's counter *deltas* since the previous snapshot, plus the
/// cumulative interval p99 at sample time (a gauge, not a delta).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageDelta {
    /// Stage / actor name.
    pub stage: String,
    /// Work items completed in the interval.
    pub items: u64,
    /// Service time billed in the interval.
    pub service: u64,
    /// Input-wait time billed in the interval.
    pub queue_wait: u64,
    /// Output-wait time billed in the interval.
    pub send_wait: u64,
    /// Idle time billed in the interval.
    pub idle: u64,
    /// Cumulative p99 of the measured stage interval at sample time.
    pub p99_interval: u64,
}

/// One sampler tick: per-stage deltas since the previous snapshot. The
/// deltas are exact differences of the monotone cumulative counters, so
/// summing every snapshot of a run reproduces the final totals with no
/// loss — the reconciliation invariant the tests pin.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Serialisation schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Monotone snapshot sequence number, from 0.
    pub seq: u64,
    /// Sample timestamp: cycles since run start ([`MetricUnit::Cycles`])
    /// or nanoseconds since sampler start ([`MetricUnit::Nanos`]).
    pub at: u64,
    /// Unit of `at` and of every time-valued counter.
    pub unit: MetricUnit,
    /// Per-stage deltas, in cell order.
    pub stages: Vec<StageDelta>,
}

/// Turns the cumulative cells into periodic [`MetricsSnapshot`] deltas.
/// The baseline is captured at construction, so a sampler built for a
/// run reports that run's activity even when the cells carried earlier
/// traffic. Single-threaded by design — the simulator drives it inline
/// at cycle boundaries; the host engine wraps one in a
/// [`SpawnedSampler`] thread ticking on wall-clock time.
#[derive(Debug)]
pub struct Sampler {
    live: Arc<LiveMetrics>,
    last: Vec<CellCounters>,
    seq: u64,
    snapshots: Vec<MetricsSnapshot>,
}

impl Sampler {
    /// A sampler over `live`, baselined at the cells' current values.
    pub fn new(live: Arc<LiveMetrics>) -> Self {
        let last = live.totals();
        Sampler {
            live,
            last,
            seq: 0,
            snapshots: Vec::new(),
        }
    }

    /// The metrics plane this sampler reads.
    pub fn live(&self) -> &Arc<LiveMetrics> {
        &self.live
    }

    /// Take one snapshot at timestamp `at`: the delta of every cell since
    /// the previous snapshot (or the construction baseline).
    pub fn sample(&mut self, at: u64) -> &MetricsSnapshot {
        let cur = self.live.totals();
        let stages = self
            .live
            .names()
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let d = cur[i].delta_since(&self.last[i]);
                StageDelta {
                    stage: name.clone(),
                    items: d.items,
                    service: d.service,
                    queue_wait: d.queue_wait,
                    send_wait: d.send_wait,
                    idle: d.idle,
                    p99_interval: self.live.cell(i).interval_stats().p99_ns(),
                }
            })
            .collect();
        self.last = cur;
        let snap = MetricsSnapshot {
            schema_version: SCHEMA_VERSION,
            seq: self.seq,
            at,
            unit: self.live.unit(),
            stages,
        };
        self.seq += 1;
        self.snapshots.push(snap);
        self.snapshots.last().expect("just pushed")
    }

    /// Snapshots taken so far, in order.
    pub fn snapshots(&self) -> &[MetricsSnapshot] {
        &self.snapshots
    }

    /// Consume the sampler, returning the snapshot time-series.
    pub fn into_snapshots(self) -> Vec<MetricsSnapshot> {
        self.snapshots
    }
}

/// Sum every snapshot's deltas per stage — the reconciliation side of the
/// invariant: for a run sampled to completion (final flush included),
/// this equals the run's final cumulative counters exactly.
pub fn sum_deltas(snapshots: &[MetricsSnapshot]) -> Vec<(String, CellCounters)> {
    let mut acc: Vec<(String, CellCounters)> = Vec::new();
    for snap in snapshots {
        if acc.is_empty() {
            acc = snap
                .stages
                .iter()
                .map(|d| (d.stage.clone(), CellCounters::default()))
                .collect();
        }
        for (slot, d) in acc.iter_mut().zip(&snap.stages) {
            debug_assert_eq!(slot.0, d.stage);
            slot.1.accumulate(&CellCounters {
                items: d.items,
                service: d.service,
                queue_wait: d.queue_wait,
                send_wait: d.send_wait,
                idle: d.idle,
            });
        }
    }
    acc
}

/// Render a snapshot time-series as JSONL (one [`MetricsSnapshot`] per
/// line) — the push-model exporter, written alongside the Perfetto trace.
pub fn snapshots_to_jsonl(snapshots: &[MetricsSnapshot]) -> String {
    let mut out = String::new();
    for snap in snapshots {
        out.push_str(&serde_json::to_string(snap).expect("snapshot renders"));
        out.push('\n');
    }
    out
}

/// A background sampling thread for the threaded host engine: ticks on
/// wall-clock time while workers bump the cells, takes a final flush
/// sample on [`SpawnedSampler::finish`]. Finish *after* the engine run
/// returns and the totals reconcile exactly (thread join gives the
/// happens-before edge).
#[derive(Debug)]
pub struct SpawnedSampler {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<Sampler>,
}

impl SpawnedSampler {
    /// Spawn a sampler over `live` ticking every `tick` of wall-clock
    /// time; timestamps are nanoseconds since spawn.
    pub fn spawn(live: Arc<LiveMetrics>, tick: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            let start = Instant::now();
            let mut sampler = Sampler::new(live);
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(tick);
                sampler.sample(start.elapsed().as_nanos() as u64);
            }
            // final flush so the series sums to the cumulative totals
            sampler.sample(start.elapsed().as_nanos() as u64);
            sampler
        });
        SpawnedSampler { stop, handle }
    }

    /// Stop the tick loop, take the final flush sample and return the
    /// snapshot time-series.
    pub fn finish(self) -> Vec<MetricsSnapshot> {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .join()
            .expect("sampler thread panicked")
            .into_snapshots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane() -> Arc<LiveMetrics> {
        LiveMetrics::new(
            MetricUnit::Cycles,
            vec!["conv1".to_string(), "fc1".to_string()],
        )
    }

    #[test]
    fn cells_accumulate_the_stall_taxonomy() {
        let live = plane();
        live.cell(0).add_stall(Stall::Computing, 5);
        live.cell(0).add_stall(Stall::Starved(2), 3);
        live.cell(0).add_stall(Stall::Backpressured(0), 2);
        live.cell(0).add_stall(Stall::Idle, 7);
        live.cell(0).add_items(4);
        let c = live.cell(0).counters();
        assert_eq!(
            c,
            CellCounters {
                items: 4,
                service: 5,
                queue_wait: 3,
                send_wait: 2,
                idle: 7
            }
        );
        assert_eq!(live.cell(1).counters(), CellCounters::default());
    }

    #[test]
    fn cell_histogram_matches_interval_stats() {
        let live = plane();
        let mut reference = IntervalStats::new();
        for v in [3u64, 17, 17, 900, 4] {
            live.cell(0).record_interval(v);
            reference.record(v);
        }
        assert_eq!(live.cell(0).interval_stats(), reference);
        // an untouched cell folds to the empty series
        assert_eq!(live.cell(1).interval_stats(), IntervalStats::new());
    }

    #[test]
    fn sampler_deltas_sum_to_totals() {
        let live = plane();
        let mut sampler = Sampler::new(live.clone());
        live.cell(0).add_service(10);
        live.cell(0).add_items(1);
        sampler.sample(100);
        live.cell(0).add_service(5);
        live.cell(1).add_queue_wait(8);
        sampler.sample(200);
        let snaps = sampler.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].stages[0].service, 10);
        assert_eq!(snaps[1].stages[0].service, 5);
        assert_eq!(snaps[1].stages[1].queue_wait, 8);
        assert_eq!(snaps[0].seq, 0);
        assert_eq!(snaps[1].seq, 1);
        let summed = sum_deltas(snaps);
        assert_eq!(summed.len(), 2);
        for (i, (name, acc)) in summed.iter().enumerate() {
            assert_eq!(name, &live.names()[i]);
            assert_eq!(acc, &live.cell(i).counters());
        }
    }

    #[test]
    fn sampler_baselines_at_construction() {
        let live = plane();
        live.cell(0).add_service(100); // pre-existing traffic
        let mut sampler = Sampler::new(live.clone());
        live.cell(0).add_service(7);
        let snap = sampler.sample(1);
        assert_eq!(snap.stages[0].service, 7, "baseline must exclude history");
    }

    #[test]
    fn snapshot_serde_round_trips_with_schema_version() {
        let live = plane();
        let mut sampler = Sampler::new(live.clone());
        live.cell(0).add_items(3);
        live.cell(0).record_interval(12);
        let snap = sampler.sample(64).clone();
        assert_eq!(snap.schema_version, SCHEMA_VERSION);
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"schema_version\""));
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        // the JSONL exporter is one parseable snapshot per line
        let jsonl = snapshots_to_jsonl(sampler.snapshots());
        assert_eq!(jsonl.lines().count(), 1);
        let parsed: MetricsSnapshot = serde_json::from_str(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn prometheus_exposition_names_every_series() {
        let live = plane();
        live.cell(0).add_items(9);
        live.cell(0).add_service(21);
        live.cell(0).record_interval(40);
        let text = live.render_prometheus();
        assert!(text.contains("# TYPE dfcnn_stage_items_total counter"));
        assert!(text.contains("dfcnn_stage_items_total{stage=\"conv1\",unit=\"cycles\"} 9"));
        assert!(text.contains("dfcnn_stage_busy_total{stage=\"conv1\",unit=\"cycles\"} 21"));
        assert!(text.contains("dfcnn_stage_idle_total{stage=\"fc1\",unit=\"cycles\"} 0"));
        assert!(text.contains("# TYPE dfcnn_stage_interval_p99 gauge"));
    }

    #[test]
    fn spawned_sampler_flushes_on_finish() {
        let live = LiveMetrics::new(MetricUnit::Nanos, vec!["s0".to_string()]);
        let sampler = SpawnedSampler::spawn(live.clone(), Duration::from_millis(1));
        live.cell(0).add_items(5);
        live.cell(0).add_service(1000);
        std::thread::sleep(Duration::from_millis(5));
        let snaps = sampler.finish();
        assert!(!snaps.is_empty());
        let summed = sum_deltas(&snaps);
        assert_eq!(summed[0].1, live.cell(0).counters());
        assert!(snaps.windows(2).all(|w| w[0].at <= w[1].at));
    }
}
