/root/repo/target/debug/deps/ablation_accum-ce988a54e565cc5b.d: crates/bench/src/bin/ablation_accum.rs

/root/repo/target/debug/deps/ablation_accum-ce988a54e565cc5b: crates/bench/src/bin/ablation_accum.rs

crates/bench/src/bin/ablation_accum.rs:
