//! Calibration study: what DMA/host overhead explains the gap between the
//! ideal-platform simulation and the paper's absolute numbers?
//!
//! Our simulator converges to 2.62 µs (TC1) and 102.6 µs (TC2) per image;
//! the paper reports 5.8 µs and 128.1 µs. Both gaps are *platform*, not
//! architecture: the DMA model is ideal (full 400 MB/s, zero descriptor
//! overhead). This binary sweeps the per-transfer setup overhead
//! (`DmaConfig::setup_cycles` — Microblaze programming the DMA descriptor
//! per image) and reports the best fit per test case.
//!
//! Findings (also discussed in EXPERIMENTS.md): TC1, which is
//! input-stream-bound, is fully explained by ≈320 cycles of per-image DMA
//! setup (256 + 324 = 580 cycles = 5.8 µs — exactly the paper's value).
//! For TC2 the setup also adds one-for-one (full buffering means conv1
//! holds no cross-image slack, so each image's pipeline start shifts by
//! the whole setup), but matching the paper's 128.1 µs would need ≈2,550
//! cycles of setup — which would blow TC1 out to 28 µs. One knob cannot
//! fit both, so TC2's remaining ~25% gap must sit inside the authors'
//! conv core (e.g. a window-copy sub-loop inflating the effective II),
//! not in the platform.
//!
//! ```text
//! cargo run -p dfcnn-bench --release --bin calibration
//! ```

use dfcnn_bench::{quick_test_case_1, quick_test_case_2, write_json, TestCase};
use dfcnn_core::graph::{DesignConfig, NetworkDesign};
use dfcnn_fpga::dma::DmaConfig;
use serde::Serialize;

#[derive(Serialize, Debug)]
struct Fit {
    case: String,
    paper_us: f64,
    ideal_us: f64,
    best_setup_cycles: u64,
    best_us: f64,
    residual_us: f64,
}

fn with_setup(tc: &TestCase, setup: u64) -> TestCase {
    let cfg = DesignConfig {
        dma: DmaConfig {
            setup_cycles: setup,
            ..DmaConfig::paper()
        },
        ..DesignConfig::default()
    };
    TestCase {
        name: tc.name,
        spec: tc.spec.clone(),
        network: tc.network.clone(),
        design: NetworkDesign::new(&tc.network, tc.design.ports().clone(), cfg).unwrap(),
        test_accuracy: tc.test_accuracy,
        images: tc.images.clone(),
    }
}

fn converged_us(tc: &TestCase) -> f64 {
    dfcnn_bench::mean_time_per_image_us(tc, 24)
}

fn main() {
    println!("== Calibration: per-image DMA setup overhead vs the paper's numbers ==\n");
    let sweeps: &[u64] = &[0, 100, 200, 300, 324, 400, 600, 1000];
    let mut fits = Vec::new();
    for (tc, paper_us) in [(quick_test_case_1(), 5.8), (quick_test_case_2(), 128.1)] {
        println!("{} (paper converges to {} µs):", tc.name, paper_us);
        println!("{:>14} {:>16}", "setup cycles", "converged µs");
        let ideal = converged_us(&tc);
        let mut best = (0u64, ideal);
        for &s in sweeps {
            let us = converged_us(&with_setup(&tc, s));
            println!("{s:>14} {us:>16.3}");
            if (us - paper_us).abs() < (best.1 - paper_us).abs() {
                best = (s, us);
            }
        }
        let fit = Fit {
            case: tc.name.to_string(),
            paper_us,
            ideal_us: ideal,
            best_setup_cycles: best.0,
            best_us: best.1,
            residual_us: (best.1 - paper_us).abs(),
        };
        println!(
            "best fit: setup = {} cycles -> {:.3} µs (residual {:.3} µs)\n",
            fit.best_setup_cycles, fit.best_us, fit.residual_us
        );
        fits.push(fit);
    }
    // TC1 must be fully explainable by DMA setup; TC2 must not be
    assert!(
        fits[0].residual_us < 0.25,
        "TC1 should calibrate to the paper: {:?}",
        fits[0]
    );
    assert!(
        fits[1].residual_us > 5.0,
        "TC2's gap should NOT be explainable by DMA setup alone: {:?}",
        fits[1]
    );
    println!(
        "conclusion: TC1's absolute gap is pure host/DMA overhead (≈{} cycles/image);\n\
         TC2's sits in the compute core and no input-side knob reaches it — the two\n\
         published numbers have different error sources.",
        fits[0].best_setup_cycles
    );
    write_json("calibration", &fits);
}
