//! Interleaved accumulators — the paper's fix for the floating-point
//! accumulation latency in FC layers (§IV-B).
//!
//! A single f32 accumulator has an 11-cycle loop-carried dependency, so a
//! pipelined accumulation loop cannot reach `II = 1`. The paper's solution:
//! "we added more accumulators and interleaved their use by exploiting a
//! partial unrolling of the main loop. By using a higher number of
//! accumulators than the single addition latency, we reached a lower total
//! latency of the layer, but with a higher resource utilization."
//!
//! With `A` accumulators, consecutive inputs round-robin across them; each
//! individual accumulator sees a new addend only every `A` cycles, so the
//! loop II is `ceil(add_latency / A)` — unity once `A ≥ add_latency`. A
//! final tree reduction merges the `A` partials.
//!
//! [`InterleavedAccumulator`] implements both the *numerics* (the partial
//! sums and their merge order, reproducing hardware rounding exactly) and
//! the *timing* (II and drain latency used by the simulator and benches).

use crate::latency::OpLatency;
use crate::reduce::TreeAdder;

/// A bank of `A` round-robin accumulators plus a merge tree, generic over
/// the accumulator element (`f32` for the paper's datapath, `i64` for the
/// exact fixed-point accumulation where interleaving is a no-op
/// numerically but still models the hardware structure).
///
/// The f32 alias is [`InterleavedAccumulator`].
///
/// ```
/// use dfcnn_hls::{accum::InterleavedAccumulator, latency::OpLatency};
/// let ops = OpLatency::f32_virtex7(); // add latency = 11 cycles
/// // one accumulator cannot pipeline the FC input loop ...
/// assert_eq!(InterleavedAccumulator::new(1).loop_ii(&ops), 11);
/// // ... the paper's fix: at least `add latency` interleaved banks
/// let mut acc = InterleavedAccumulator::sized_for(&ops);
/// assert_eq!(acc.loop_ii(&ops), 1);
/// for v in [1.0, 2.0, 3.0, 4.0] { acc.push(v); }
/// assert_eq!(acc.total(), 10.0);
/// ```
#[derive(Clone, Debug)]
pub struct InterleavedBank<T> {
    partials: Vec<T>,
    next: usize,
    count: usize,
}

/// The f32 bank the paper's FC core uses. A distinct alias (rather than a
/// defaulted parameter at every call site) so existing `f32` call sites
/// keep full type inference.
pub type InterleavedAccumulator = InterleavedBank<f32>;

impl<T> InterleavedBank<T>
where
    T: Copy + Default + core::ops::Add<Output = T>,
{
    /// Create a bank of `banks ≥ 1` accumulators.
    pub fn new(banks: usize) -> Self {
        assert!(banks >= 1, "need at least one accumulator");
        InterleavedBank {
            partials: vec![T::default(); banks],
            next: 0,
            count: 0,
        }
    }

    /// The bank size chosen by the paper's rule: the smallest count that
    /// reaches `II = 1`, i.e. the addition latency itself.
    pub fn sized_for(ops: &OpLatency) -> Self {
        Self::new(ops.add as usize)
    }

    /// Number of accumulator banks.
    pub fn banks(&self) -> usize {
        self.partials.len()
    }

    /// Values accumulated so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feed one value (round-robin bank selection).
    #[inline]
    pub fn push(&mut self, v: T) {
        self.partials[self.next] = self.partials[self.next] + v;
        self.next = (self.next + 1) % self.partials.len();
        self.count += 1;
    }

    /// Merge the partials through a tree adder and return the total.
    /// The accumulator stays usable (merge does not reset state).
    pub fn total(&self) -> T {
        TreeAdder::new(self.partials.len()).sum(&self.partials)
    }

    /// [`InterleavedBank::total`] without the internal allocation:
    /// the merge tree runs in `scratch` (at least `banks()` long). Rounding
    /// is identical to `total()` — the tree pairs partials the same way.
    pub fn total_with_scratch(&self, scratch: &mut [T]) -> T {
        TreeAdder::new(self.partials.len()).sum_with_scratch(&self.partials, scratch)
    }

    /// Reset to zero.
    pub fn reset(&mut self) {
        self.partials.iter_mut().for_each(|p| *p = T::default());
        self.next = 0;
        self.count = 0;
    }

    /// Initiation interval of the accumulation loop with this bank count:
    /// `ceil(add_latency / banks)`.
    pub fn loop_ii(&self, ops: &OpLatency) -> u32 {
        (ops.add as usize).div_ceil(self.partials.len()) as u32
    }

    /// Cycles to accumulate `n` inputs and drain: `n * II` for the feed
    /// (pipelined), plus the add pipeline flush, plus the merge tree.
    pub fn total_cycles(&self, n: usize, ops: &OpLatency) -> u64 {
        let feed = n as u64 * self.loop_ii(ops) as u64;
        let flush = ops.add as u64;
        let merge = TreeAdder::new(self.partials.len()).latency(ops) as u64;
        feed + flush + merge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bank_is_plain_accumulation() {
        let mut a = InterleavedAccumulator::new(1);
        for v in [1.0f32, 2.0, 3.0] {
            a.push(v);
        }
        assert_eq!(a.total(), 6.0);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn multi_bank_exact_on_integers() {
        let mut a = InterleavedAccumulator::new(4);
        for v in 0..32 {
            a.push(v as f32);
        }
        assert_eq!(a.total(), (31 * 32 / 2) as f32);
    }

    #[test]
    fn partials_round_robin() {
        let mut a = InterleavedAccumulator::new(3);
        for v in [1.0f32, 10.0, 100.0, 2.0, 20.0, 200.0, 3.0] {
            a.push(v);
        }
        // banks: [1+2+3, 10+20, 100+200]
        assert_eq!(a.partials, vec![6.0, 30.0, 300.0]);
    }

    #[test]
    fn ii_reaches_one_at_add_latency_banks() {
        let ops = OpLatency::f32_virtex7(); // add = 11
        assert_eq!(InterleavedAccumulator::new(1).loop_ii(&ops), 11);
        assert_eq!(InterleavedAccumulator::new(4).loop_ii(&ops), 3);
        assert_eq!(InterleavedAccumulator::new(11).loop_ii(&ops), 1);
        assert_eq!(InterleavedAccumulator::new(16).loop_ii(&ops), 1);
        assert_eq!(InterleavedAccumulator::sized_for(&ops).banks(), 11);
    }

    #[test]
    fn fixed_point_needs_no_interleaving() {
        // §IV-B: "The issue does not arise when using integer values"
        let ops = OpLatency::fixed_point();
        assert_eq!(InterleavedAccumulator::new(1).loop_ii(&ops), 1);
    }

    #[test]
    fn more_banks_fewer_cycles_until_saturation() {
        let ops = OpLatency::f32_virtex7();
        let n = 900; // TC2 FC1 input count
        let cycles: Vec<u64> = [1usize, 2, 4, 8, 11, 16]
            .iter()
            .map(|&b| InterleavedAccumulator::new(b).total_cycles(n, &ops))
            .collect();
        // monotone non-increasing in feed cost until II hits 1
        assert!(cycles[0] > cycles[1]);
        assert!(cycles[1] > cycles[2]);
        assert!(cycles[2] > cycles[3]);
        assert!(cycles[3] > cycles[4]);
        // beyond A = add latency only the merge tree grows
        assert!(cycles[5] >= cycles[4]);
    }

    #[test]
    fn total_with_scratch_is_bit_identical() {
        for banks in [1usize, 2, 3, 7, 11, 16] {
            let mut a = InterleavedAccumulator::new(banks);
            for i in 0..100 {
                a.push((i as f32) * 0.137 - 3.0);
            }
            let mut scratch = vec![0.0f32; banks];
            assert_eq!(a.total(), a.total_with_scratch(&mut scratch));
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut a = InterleavedAccumulator::new(2);
        a.push(5.0);
        a.reset();
        assert_eq!(a.total(), 0.0);
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn i64_bank_is_exact_in_any_order() {
        // the fixed-point accumulator: interleaving cannot change the bits
        let mut a = InterleavedBank::<i64>::new(11);
        let mut b = InterleavedBank::<i64>::new(3);
        let mut seq = 0i64;
        for i in 0..1000i64 {
            let v = i * 7919 - 3500;
            a.push(v);
            b.push(v);
            seq += v;
        }
        assert_eq!(a.total(), seq);
        assert_eq!(b.total(), seq);
        let mut scratch = vec![0i64; 11];
        assert_eq!(a.total_with_scratch(&mut scratch), seq);
    }

    #[test]
    fn rounding_differs_from_sequential_sum() {
        // The interleaved order is a *different* float summation than the
        // naive left-to-right loop; the simulator must use the former.
        let values: Vec<f32> = (0..1000)
            .map(|i| if i % 2 == 0 { 1e7 } else { 0.123 })
            .collect();
        let mut a = InterleavedAccumulator::new(11);
        values.iter().for_each(|&v| a.push(v));
        let naive: f32 = values.iter().sum();
        // both are finite; they need not be equal (and here they are not)
        assert!(a.total().is_finite() && naive.is_finite());
        assert_ne!(a.total(), naive);
    }
}
