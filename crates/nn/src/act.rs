//! Per-element nonlinearities.
//!
//! The paper's convolutional layer "may apply a nonlinear function, e.g.
//! tanh() or max(0, x), on each value in the output volume" (§II-A). The
//! dataflow compute core applies the same function inline before sending a
//! value on its output port, so both the reference CNN and the accelerator
//! share this module.

use serde::{Deserialize, Serialize};

/// The activation applied element-wise after a layer's affine computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Activation {
    /// Identity (no nonlinearity).
    #[default]
    Identity,
    /// Hyperbolic tangent, the classical LeNet-era choice.
    Tanh,
    /// Rectified linear unit `max(0, x)`.
    Relu,
}

impl Activation {
    /// Apply the activation to one value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
        }
    }

    /// Derivative of the activation expressed in terms of the *output*
    /// value `y = f(x)`. (tanh' = 1 - y²; relu' = (y > 0); id' = 1.)
    ///
    /// Working from the output avoids re-running the forward pass during
    /// backprop.
    #[inline]
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Short name used in block-diagram rendering (Figs. 4/5 style).
    pub fn name(self) -> &'static str {
        match self {
            Activation::Identity => "id",
            Activation::Tanh => "tanh",
            Activation::Relu => "relu",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_passes_through() {
        assert_eq!(Activation::Identity.apply(-3.5), -3.5);
        assert_eq!(Activation::Identity.derivative_from_output(7.0), 1.0);
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(2.0), 1.0);
    }

    #[test]
    fn tanh_matches_std() {
        let x = 0.37f32;
        assert_eq!(Activation::Tanh.apply(x), x.tanh());
        let y = x.tanh();
        assert!((Activation::Tanh.derivative_from_output(y) - (1.0 - y * y)).abs() < 1e-7);
    }

    #[test]
    fn tanh_derivative_numerically() {
        // finite-difference check of d/dx tanh(x) against derivative_from_output
        let x = -0.8f32;
        let h = 1e-3f32;
        let num = (Activation::Tanh.apply(x + h) - Activation::Tanh.apply(x - h)) / (2.0 * h);
        let ana = Activation::Tanh.derivative_from_output(x.tanh());
        assert!((num - ana).abs() < 1e-3, "num={num} ana={ana}");
    }

    #[test]
    fn default_is_identity() {
        assert_eq!(Activation::default(), Activation::Identity);
    }
}
