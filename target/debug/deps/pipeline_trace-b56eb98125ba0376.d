/root/repo/target/debug/deps/pipeline_trace-b56eb98125ba0376.d: crates/bench/src/bin/pipeline_trace.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_trace-b56eb98125ba0376.rmeta: crates/bench/src/bin/pipeline_trace.rs Cargo.toml

crates/bench/src/bin/pipeline_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
