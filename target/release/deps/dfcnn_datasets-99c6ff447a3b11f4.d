/root/repo/target/release/deps/dfcnn_datasets-99c6ff447a3b11f4.d: crates/datasets/src/lib.rs crates/datasets/src/batch.rs crates/datasets/src/cifar.rs crates/datasets/src/usps.rs

/root/repo/target/release/deps/libdfcnn_datasets-99c6ff447a3b11f4.rlib: crates/datasets/src/lib.rs crates/datasets/src/batch.rs crates/datasets/src/cifar.rs crates/datasets/src/usps.rs

/root/repo/target/release/deps/libdfcnn_datasets-99c6ff447a3b11f4.rmeta: crates/datasets/src/lib.rs crates/datasets/src/batch.rs crates/datasets/src/cifar.rs crates/datasets/src/usps.rs

crates/datasets/src/lib.rs:
crates/datasets/src/batch.rs:
crates/datasets/src/cifar.rs:
crates/datasets/src/usps.rs:
