//! Ablation: **DMA bandwidth sensitivity** (§V-C, §VI).
//!
//! The paper tests at 400 MB/s (one 32-bit beat per 100 MHz cycle) and
//! names better off-chip bandwidth exploitation as future work. This
//! ablation sweeps the available bandwidth and measures the converged
//! mean time per image: Test Case 1 is input-streaming-bound, so it
//! degrades as soon as bandwidth drops; Test Case 2 is conv1-II-bound, so
//! it stays flat until the stream can no longer keep the pipeline fed
//! (below 3072/9408 ≈ 0.33 beats per cycle ≈ 130 MB/s).
//!
//! ```text
//! cargo run -p dfcnn-bench --release --bin ablation_bandwidth
//! ```

use dfcnn_bench::{quick_test_case_1, quick_test_case_2, write_json, TestCase};
use dfcnn_core::graph::{DesignConfig, NetworkDesign};
use dfcnn_fpga::dma::DmaConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    case: String,
    bandwidth_mb_s: f64,
    mean_us_per_image: f64,
}

fn with_bandwidth(tc: &TestCase, mb_s: f64) -> TestCase {
    let cfg = DesignConfig {
        dma: DmaConfig {
            bandwidth_bytes_per_s: mb_s * 1e6,
            ..DmaConfig::paper()
        },
        ..DesignConfig::default()
    };
    TestCase {
        name: tc.name,
        spec: tc.spec.clone(),
        network: tc.network.clone(),
        design: NetworkDesign::new(&tc.network, tc.design.ports().clone(), cfg).unwrap(),
        test_accuracy: tc.test_accuracy,
        images: tc.images.clone(),
    }
}

fn main() {
    println!("== Ablation: DMA bandwidth sweep (paper operates at 400 MB/s) ==\n");
    let sweeps = [400.0, 300.0, 200.0, 130.0, 100.0, 50.0];
    let mut all = Vec::new();
    for tc in [quick_test_case_1(), quick_test_case_2()] {
        println!("{}:", tc.name);
        println!("{:>14} {:>18}", "MB/s", "mean µs/image");
        let mut base = f64::NAN;
        for &bw in &sweeps {
            let case = with_bandwidth(&tc, bw);
            let us = dfcnn_bench::mean_time_per_image_us(&case, 16);
            if bw == 400.0 {
                base = us;
            }
            println!("{bw:>14.0} {us:>18.3}");
            all.push(Point {
                case: tc.name.to_string(),
                bandwidth_mb_s: bw,
                mean_us_per_image: us,
            });
        }
        let _ = base;
        println!();
    }
    // shape checks
    let at = |case: &str, bw: f64| {
        all.iter()
            .find(|p| p.case == case && p.bandwidth_mb_s == bw)
            .unwrap()
            .mean_us_per_image
    };
    // TC1: input-bound — halving bandwidth roughly doubles time
    let tc1_ratio = at("Test Case 1", 200.0) / at("Test Case 1", 400.0);
    assert!(
        (1.7..2.3).contains(&tc1_ratio),
        "TC1 should scale with bandwidth: ratio {tc1_ratio}"
    );
    // TC2: compute-bound — 200 MB/s barely moves it
    let tc2_ratio = at("Test Case 2", 200.0) / at("Test Case 2", 400.0);
    assert!(
        tc2_ratio < 1.1,
        "TC2 should be insensitive above ~130 MB/s: ratio {tc2_ratio}"
    );
    // but 50 MB/s starves even TC2
    let tc2_starved = at("Test Case 2", 50.0) / at("Test Case 2", 400.0);
    assert!(
        tc2_starved > 1.5,
        "TC2 must starve at 50 MB/s: {tc2_starved}"
    );
    println!("shape checks passed: TC1 bandwidth-bound, TC2 compute-bound until ~130 MB/s");
    write_json("ablation_bandwidth", &all);
}
