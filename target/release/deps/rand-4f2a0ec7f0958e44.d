/root/repo/target/release/deps/rand-4f2a0ec7f0958e44.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/rand-4f2a0ec7f0958e44: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
