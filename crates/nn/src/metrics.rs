//! Classification metrics for evaluating the trained reference networks and
//! the accelerator's functional outputs.

use dfcnn_tensor::Tensor3;

/// Confusion matrix over `k` classes.
#[derive(Clone, Debug)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<u64>, // row = true class, col = predicted
}

impl ConfusionMatrix {
    /// Empty matrix for `k` classes.
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        ConfusionMatrix {
            k,
            counts: vec![0; k * k],
        }
    }

    /// Record one prediction.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.k && predicted < self.k, "class out of range");
        self.counts[truth * self.k + predicted] += 1;
    }

    /// Count for (true class, predicted class).
    pub fn get(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.k + predicted]
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy in `[0, 1]`; 0 if empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.k).map(|i| self.get(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall (`diag / row sum`), `None` for unseen classes.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: u64 = (0..self.k).map(|j| self.get(class, j)).sum();
        if row == 0 {
            None
        } else {
            Some(self.get(class, class) as f64 / row as f64)
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.k
    }
}

/// Accuracy of a predictor over a labelled set.
pub fn accuracy_of(
    predict: impl Fn(&Tensor3<f32>) -> usize,
    samples: &[(Tensor3<f32>, usize)],
) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let correct = samples
        .iter()
        .filter(|(x, label)| predict(x) == *label)
        .count();
    correct as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfcnn_tensor::Shape3;

    #[test]
    fn confusion_accuracy() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(0, 0);
        cm.record(1, 2);
        cm.record(2, 2);
        assert_eq!(cm.total(), 4);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(cm.get(1, 2), 1);
    }

    #[test]
    fn recall_handles_unseen_class() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        assert_eq!(cm.recall(0), Some(1.0));
        assert_eq!(cm.recall(1), None);
    }

    #[test]
    fn empty_matrix_accuracy_zero() {
        assert_eq!(ConfusionMatrix::new(4).accuracy(), 0.0);
    }

    #[test]
    fn accuracy_of_closure() {
        let mk = |v: f32| Tensor3::full(Shape3::new(1, 1, 1), v);
        let samples = vec![(mk(0.0), 0), (mk(1.0), 1), (mk(2.0), 0)];
        // predictor: class 1 iff value > 0.5
        let acc = accuracy_of(|x| if x.get(0, 0, 0) > 0.5 { 1 } else { 0 }, &samples);
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
    }
}
