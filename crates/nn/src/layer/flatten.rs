//! The reshape seam between the features-extraction and classification
//! stages.
//!
//! With channel-fastest storage a flatten is a pure relabelling: the data
//! does not move, exactly as in the accelerator where the conv→FC boundary
//! is just the same AXI stream reinterpreted (§IV-B: each incoming value is
//! "a different input channel ... in a 1×1 FM").

use dfcnn_tensor::{Shape3, Tensor3};

/// Reshape `H × W × C` into `1 × 1 × (H·W·C)` preserving stream order.
#[derive(Clone, Debug)]
pub struct Flatten {
    input: Shape3,
}

impl Flatten {
    /// Create a flatten layer for the given input shape.
    pub fn new(input: Shape3) -> Self {
        Flatten { input }
    }

    /// Configured input shape.
    pub fn input_shape(&self) -> Shape3 {
        self.input
    }

    /// Output shape: `1 × 1 × N`.
    pub fn output_shape(&self) -> Shape3 {
        Shape3::new(1, 1, self.input.len())
    }

    /// Forward pass (zero-copy apart from the buffer clone).
    pub fn forward(&self, input: &Tensor3<f32>) -> Tensor3<f32> {
        assert_eq!(input.shape(), self.input, "input shape mismatch");
        Tensor3::from_vec(self.output_shape(), input.as_slice().to_vec())
    }

    /// Backward pass: reshape the gradient back.
    pub fn backward(&self, grad_out: &Tensor3<f32>) -> Tensor3<f32> {
        assert_eq!(grad_out.shape(), self.output_shape());
        Tensor3::from_vec(self.input, grad_out.as_slice().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_preserves_stream_order() {
        let x = Tensor3::from_fn(Shape3::new(2, 3, 2), |y, xx, c| {
            (y * 100 + xx * 10 + c) as f32
        });
        let f = Flatten::new(x.shape());
        let y = f.forward(&x);
        assert_eq!(y.shape(), Shape3::new(1, 1, 12));
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn backward_inverts_forward() {
        let x = Tensor3::from_fn(Shape3::new(2, 2, 3), |y, xx, c| (y + xx + c) as f32);
        let f = Flatten::new(x.shape());
        let y = f.forward(&x);
        let back = f.backward(&y);
        assert_eq!(back, x);
    }
}
