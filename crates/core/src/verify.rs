//! Functional verification of the accelerator against the software
//! reference.
//!
//! Three layers of checking, strongest first:
//!
//! 1. **Engine equivalence (exact)**: the cycle simulator and the threaded
//!    engine share the [`crate::kernel`] numerics, so their outputs must be
//!    bit-identical.
//! 2. **Reference closeness (tolerance)**: the accelerator's summation
//!    orders (tree adders, interleaved accumulators, port grouping) differ
//!    from the reference CNN's left-to-right sums, so scores agree within a
//!    small float tolerance.
//! 3. **Decision equivalence**: classifications (argmax over scores) must
//!    match the reference on well-separated inputs; disagreements are
//!    reported with their score margins so genuinely ambiguous inputs can
//!    be distinguished from bugs.

use crate::graph::NetworkDesign;
use dfcnn_tensor::Tensor3;

/// Outcome of verifying one batch.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Largest |simulated − reference| across all images and classes.
    pub max_abs_diff: f32,
    /// Images whose argmax disagreed with the reference, with the
    /// reference's winning margin (small margin ⇒ genuinely ambiguous).
    pub mismatches: Vec<Mismatch>,
    /// Number of images checked.
    pub checked: usize,
}

/// One prediction disagreement.
#[derive(Clone, Debug)]
pub struct Mismatch {
    /// Batch index of the image.
    pub index: usize,
    /// Class chosen by the accelerator.
    pub hw_class: usize,
    /// Class chosen by the reference.
    pub ref_class: usize,
    /// Reference score gap between its top-2 classes.
    pub ref_margin: f32,
}

impl VerifyReport {
    /// Whether every prediction matched and scores stayed within `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.mismatches.is_empty() && self.max_abs_diff <= tol
    }
}

/// Reference scores for one image at the point where the fabric hands off
/// to the host: pre-softmax when the normalisation runs on the host,
/// post-softmax when the design carries an on-fabric normalisation core.
/// Fork/join designs have no linear layer chain to trace, so their
/// reference composes the layers along the stage topology instead
/// ([`crate::model::reference_forward`]).
pub fn reference_scores(design: &NetworkDesign, image: &Tensor3<f32>) -> Vec<f32> {
    if design.is_graph() {
        return crate::model::reference_forward(design, image)
            .as_slice()
            .to_vec();
    }
    let trace = design.network().forward_trace(image);
    // when normalisation stays on the host, the sink collects the
    // activation *before* it; otherwise (on-fabric, or no normalisation
    // layer at all) the final activation is the right comparison point
    let idx = if design.host_normalization() {
        trace.len() - 2
    } else {
        trace.len() - 1
    };
    trace[idx].as_slice().to_vec()
}

/// Compare accelerator outputs (one score vector per image) against the
/// reference network.
pub fn compare_outputs(
    design: &NetworkDesign,
    images: &[Tensor3<f32>],
    hw_outputs: &[Vec<f32>],
) -> VerifyReport {
    assert_eq!(images.len(), hw_outputs.len(), "batch size mismatch");
    let mut max_abs_diff = 0.0f32;
    let mut mismatches = Vec::new();
    for (i, (img, hw)) in images.iter().zip(hw_outputs.iter()).enumerate() {
        let reference = reference_scores(design, img);
        assert_eq!(reference.len(), hw.len(), "class count mismatch");
        for (a, b) in hw.iter().zip(reference.iter()) {
            max_abs_diff = max_abs_diff.max((a - b).abs());
        }
        let hw_class = argmax(hw);
        let ref_class = argmax(&reference);
        if hw_class != ref_class {
            mismatches.push(Mismatch {
                index: i,
                hw_class,
                ref_class,
                ref_margin: margin(&reference),
            });
        }
    }
    VerifyReport {
        max_abs_diff,
        mismatches,
        checked: images.len(),
    }
}

/// Run the cycle simulator on a batch and verify it end to end.
pub fn verify_simulated(design: &NetworkDesign, images: &[Tensor3<f32>]) -> VerifyReport {
    let (result, _) = design.instantiate(images).run();
    compare_outputs(design, images, &result.outputs)
}

/// Run a batch under both the event-driven scheduler and the dense
/// reference sweep and assert they are indistinguishable: identical
/// [`crate::sim::SimResult`]s (completion cycles, bit-identical outputs,
/// total cycles, actor/FIFO statistics and stall-taxonomy counters) and
/// identical traces including the per-actor stall span tracks. Also checks
/// the flight recorder's internal invariants (per-actor accounting
/// identity, buffer and FIFO high-water marks within their bounds).
/// Returns the event-driven result.
///
/// # Panics
/// With a diagnostic naming the first differing field if the schedulers
/// disagree — the conformance contract of `SimConfig::reference_mode`.
pub fn check_engine_conformance(
    design: &NetworkDesign,
    images: &[Tensor3<f32>],
) -> crate::sim::SimResult {
    // the static verifier must prove the design structurally safe before
    // either scheduler runs a cycle — a conformant design is a checked
    // design. Numeric-range errors are tolerated: conformance certifies
    // engine *agreement*, which holds on saturating designs too (all
    // engines clamp identically into the container).
    let check = crate::check::check_design(design);
    assert!(
        check.is_structurally_clean(),
        "design fails the static check:\n{}",
        check.render()
    );
    let (event, event_trace) = design.instantiate(images).with_trace().run();
    let (reference, reference_trace) = design
        .instantiate(images)
        .with_trace()
        .reference_mode()
        .run();
    assert_eq!(
        event.completions, reference.completions,
        "completion cycles diverge between schedulers"
    );
    assert_eq!(
        event.outputs, reference.outputs,
        "collected outputs diverge between schedulers"
    );
    assert_eq!(
        event.cycles, reference.cycles,
        "total cycle counts diverge between schedulers"
    );
    assert_eq!(
        event.actor_stats, reference.actor_stats,
        "actor statistics diverge between schedulers"
    );
    assert_eq!(
        event.fifo_stats, reference.fifo_stats,
        "FIFO statistics diverge between schedulers"
    );
    assert_eq!(
        event.stalls, reference.stalls,
        "stall taxonomy counters diverge between schedulers"
    );
    assert_eq!(
        event_trace.events(),
        reference_trace.events(),
        "trace events diverge between schedulers"
    );
    assert_eq!(
        event_trace.stall_tracks(),
        reference_trace.stall_tracks(),
        "stall span tracks diverge between schedulers"
    );
    // flight-recorder internal consistency: every cycle of every actor is
    // classified exactly once, and occupancy never exceeds its bound
    for s in &event.stalls {
        assert_eq!(
            s.total(),
            event.cycles,
            "stall accounting identity violated for {}",
            s.name
        );
    }
    for a in &event.actor_stats {
        if let Some((hwm, bound)) = a.buffer_hwm {
            assert!(
                hwm <= bound,
                "{}: line-buffer HWM {hwm} exceeds the full-buffering bound {bound}",
                a.name
            );
        }
    }
    for (i, f) in event.fifo_stats.iter().enumerate() {
        assert!(
            f.max_occupancy <= f.capacity,
            "fifo {i}: occupancy HWM {} exceeds capacity {}",
            f.max_occupancy,
            f.capacity
        );
    }
    event
}

fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    for i in 1..v.len() {
        if v[i] > v[best] {
            best = i;
        }
    }
    best
}

/// Gap between the largest and second-largest score.
fn margin(v: &[f32]) -> f32 {
    assert!(v.len() >= 2);
    let mut a = f32::NEG_INFINITY;
    let mut b = f32::NEG_INFINITY;
    for &x in v {
        if x > a {
            b = a;
            a = x;
        } else if x > b {
            b = x;
        }
    }
    a - b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DesignConfig, PortConfig};
    use dfcnn_nn::topology::NetworkSpec;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tc1_design(seed: u64) -> NetworkDesign {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = NetworkSpec::test_case_1().build(&mut rng);
        NetworkDesign::new(
            &net,
            PortConfig::paper_test_case_1(),
            DesignConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn hw_forward_outputs_pass_comparison() {
        let design = tc1_design(1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let imgs: Vec<_> = (0..3)
            .map(|_| {
                dfcnn_tensor::init::random_volume(
                    &mut rng,
                    design.network().input_shape(),
                    0.0,
                    1.0,
                )
            })
            .collect();
        let hw: Vec<Vec<f32>> = imgs
            .iter()
            .map(|x| design.hw_forward(x).into_vec())
            .collect();
        let report = compare_outputs(&design, &imgs, &hw);
        assert!(report.passes(1e-3), "report: {report:?}");
        assert_eq!(report.checked, 3);
    }

    #[test]
    fn corrupted_outputs_are_caught() {
        let design = tc1_design(3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let img =
            dfcnn_tensor::init::random_volume(&mut rng, design.network().input_shape(), 0.0, 1.0);
        let mut hw = design.hw_forward(&img).into_vec();
        // corrupt the winning score hard enough to flip the argmax
        let win = argmax(&hw);
        hw[win] = -100.0;
        let report = compare_outputs(&design, &[img], &[hw]);
        assert!(!report.passes(1e-3));
        assert_eq!(report.mismatches.len(), 1);
        assert_eq!(report.mismatches[0].ref_class, win);
    }

    #[test]
    fn residual_graph_simulates_and_verifies() {
        let design = crate::graph::fixtures::residual_graph(DesignConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let imgs: Vec<_> = (0..2)
            .map(|_| {
                dfcnn_tensor::init::random_volume(
                    &mut rng,
                    design.network().input_shape(),
                    0.0,
                    1.0,
                )
            })
            .collect();
        // both schedulers agree on the fork/join pipeline...
        let result = check_engine_conformance(&design, &imgs);
        // ...and the collected scores match the layer-composed reference
        let report = compare_outputs(&design, &imgs, &result.outputs);
        assert!(report.passes(1e-3), "report: {report:?}");
    }

    #[test]
    fn margin_math() {
        assert_eq!(margin(&[3.0, 1.0, 2.5]), 0.5);
        assert_eq!(margin(&[1.0, 1.0]), 0.0);
    }
}
