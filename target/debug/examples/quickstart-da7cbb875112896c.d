/root/repo/target/debug/examples/quickstart-da7cbb875112896c.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-da7cbb875112896c.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
