/root/repo/target/release/deps/table2-161f5bc4146c3ec1.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-161f5bc4146c3ec1: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
