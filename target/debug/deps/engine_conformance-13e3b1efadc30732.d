/root/repo/target/debug/deps/engine_conformance-13e3b1efadc30732.d: tests/engine_conformance.rs tests/common/mod.rs

/root/repo/target/debug/deps/engine_conformance-13e3b1efadc30732: tests/engine_conformance.rs tests/common/mod.rs

tests/engine_conformance.rs:
tests/common/mod.rs:
