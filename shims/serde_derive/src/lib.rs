//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! workspace serde shim.
//!
//! Parses the item's token stream directly (no syn/quote in this
//! environment) and emits `to_value`/`from_value` impls against the
//! shim's `Value` tree, matching real serde's externally-tagged JSON
//! layout. Supports non-generic structs (named, tuple, unit) and enums
//! (unit, tuple and struct variants) without `#[serde(...)]` attributes —
//! exactly the shapes this repository declares. Generic types implement
//! the traits by hand (see `dfcnn-tensor`'s `Fixed`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Skip outer attributes (`#[...]`, incl. doc comments) and visibility.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn ident(toks: &[TokenTree], i: usize, what: &str) -> String {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected {what}, found {other:?}"),
    }
}

/// Skip a type (or discriminant) up to a top-level comma, tracking angle
/// brackets so commas inside generics don't terminate early.
fn skip_to_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while let Some(t) = toks.get(i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        fields.push(ident(&toks, i, "field name"));
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:`, found {other:?}"),
        }
        i = skip_to_comma(&toks, i);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        n += 1;
        i = skip_to_comma(&toks, i);
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = ident(&toks, i, "variant name");
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // skip an optional discriminant and the trailing comma
        i = skip_to_comma(&toks, i);
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> (String, Kind) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kw = ident(&toks, i, "`struct` or `enum`");
    i += 1;
    let name = ident(&toks, i, "type name");
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!(
                "serde shim derive: `{name}` is generic; implement \
                 Serialize/Deserialize by hand (see dfcnn-tensor's Fixed)"
            );
        }
    }
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde shim derive: unsupported struct body {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: expected enum body, found {other:?}"),
        },
        other => panic!("serde shim derive: expected struct or enum, found `{other}`"),
    };
    (name, kind)
}

fn field_binders(n: usize) -> Vec<String> {
    (0..n).map(|k| format!("__f{k}")).collect()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, kind) = parse_item(input);
    let body = match &kind {
        Kind::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::Value::Map(vec![{}])", pairs.join(", "))
        }
        Kind::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders = field_binders(*n);
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Map(vec![(\"{vn}\".to_string(), \
                                 serde::Value::Seq(vec![{}]))]),",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => serde::Value::Map(vec![(\"{vn}\".to_string(), \
                                 serde::Value::Map(vec![{}]))]),",
                                fields.join(", "),
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde shim derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, kind) = parse_item(input);
    let body = match &kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: serde::Deserialize::from_value(__v.field(\"{f}\")?)?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Kind::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("serde::Deserialize::from_value(&__items[{k}])?"))
                .collect();
            format!(
                "match __v {{\n\
                     serde::Value::Seq(__items) if __items.len() == {n} => \
                         Ok({name}({})),\n\
                     _ => Err(serde::Error(\"`{name}` expects a sequence of {n}\".to_string())),\n\
                 }}",
                inits.join(", ")
            )
        }
        Kind::UnitStruct => format!("Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let map_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("serde::Deserialize::from_value(&__items[{k}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match __inner {{\n\
                                     serde::Value::Seq(__items) if __items.len() == {n} => \
                                         Ok({name}::{vn}({})),\n\
                                     _ => Err(serde::Error(\"variant `{vn}` expects a sequence of {n}\"\
                                         .to_string())),\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::Deserialize::from_value(__inner.field(\"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => Err(serde::Error(format!(\n\
                             \"unknown variant `{{__other}}` of `{name}`\"))),\n\
                     }},\n\
                     serde::Value::Map(__pairs) if __pairs.len() == 1 => {{\n\
                         let (__k, __inner) = &__pairs[0];\n\
                         let _ = __inner;\n\
                         match __k.as_str() {{\n\
                             {}\n\
                             __other => Err(serde::Error(format!(\n\
                                 \"unknown variant `{{__other}}` of `{name}`\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(serde::Error(\"invalid enum representation for `{name}`\"\
                         .to_string())),\n\
                 }}",
                unit_arms.join("\n"),
                map_arms.join("\n")
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde shim derive: generated Deserialize impl must parse")
}
