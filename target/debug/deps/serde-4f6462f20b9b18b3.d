/root/repo/target/debug/deps/serde-4f6462f20b9b18b3.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/serde-4f6462f20b9b18b3: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
