/root/repo/target/release/deps/rand-8add10bdc9c8b119.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-8add10bdc9c8b119.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-8add10bdc9c8b119.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
