//! Shared generators for whole-design randomised tests (used by
//! `random_designs.rs` and `engine_conformance.rs`; this directory is not
//! itself compiled as a test crate).

#![allow(dead_code)]

use dfcnn::core::graph::{LayerPorts, PortConfig};
use dfcnn::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A random small-but-real topology: conv [pool] conv? flatten linear.
pub fn random_spec() -> impl Strategy<Value = NetworkSpec> {
    (
        6usize..11,          // input h = w
        1usize..4,           // input channels
        1usize..5,           // conv1 maps
        2usize..4,           // conv1 window
        proptest::bool::ANY, // pool present
        proptest::bool::ANY, // second conv present
        2usize..6,           // classes
        proptest::bool::ANY, // relu vs tanh
    )
        .prop_map(|(hw, c, k1, win1, with_pool, with_conv2, classes, relu)| {
            let act = if relu {
                Activation::Relu
            } else {
                Activation::Tanh
            };
            let mut layers = vec![LayerSpec::Conv {
                kh: win1,
                kw: win1,
                out_maps: k1,
                stride: 1,
                pad: 0,
                activation: act,
            }];
            let mut cur = hw - win1 + 1;
            if with_pool && cur >= 2 {
                layers.push(LayerSpec::Pool {
                    kh: 2,
                    kw: 2,
                    stride: 2,
                    kind: PoolKind::Max,
                });
                cur /= 2;
            }
            if with_conv2 && cur >= 2 {
                layers.push(LayerSpec::Conv {
                    kh: 2,
                    kw: 2,
                    out_maps: 2 * k1,
                    stride: 1,
                    pad: 0,
                    activation: act,
                });
            }
            layers.push(LayerSpec::Flatten);
            layers.push(LayerSpec::Linear {
                outputs: classes,
                activation: Activation::Identity,
            });
            layers.push(LayerSpec::LogSoftmax);
            NetworkSpec {
                name: "random".into(),
                input: Shape3::new(hw, hw, c),
                layers,
            }
        })
}

/// The canonical fork/join fixture: an 8×8×2 residual block
/// `conv → fork → { conv → scaleshift | identity } → add → flatten →
/// linear(4)`, all single-port, deterministic weights. The skip-path
/// FIFO is auto-sized by the builder unless `config.skip_fifo_cap`
/// clamps it (the seeded reconvergence fault).
pub fn residual_design(config: DesignConfig) -> NetworkDesign {
    use dfcnn::core::graph::GraphBuilder;
    use dfcnn::nn::layer::{Flatten, Layer};

    let input = Shape3::new(8, 8, 2);
    let geo = ConvGeometry::new(input, 3, 3, 1, 1); // shape-preserving
    let trunk_f = Tensor4::from_fn(2, 3, 3, 2, |k, y, x, c| {
        ((k + 2 * y + x + c) as f32) * 0.05 - 0.1
    });
    let trunk = dfcnn::nn::Conv2d::new(geo, trunk_f, Tensor1::zeros(2), Activation::Identity);
    let branch_f = Tensor4::from_fn(2, 3, 3, 2, |k, y, x, c| {
        ((3 * k + y + x + 2 * c) as f32) * 0.04 - 0.15
    });
    let branch = dfcnn::nn::Conv2d::new(geo, branch_f, Tensor1::zeros(2), Activation::Identity);
    let bn = dfcnn::nn::ScaleShift::new(input, vec![0.9, 1.2], vec![0.05, -0.1]);
    let fc_w = Tensor4::from_fn(4, 1, 1, 128, |j, _, _, i| {
        ((j * 31 + i) % 17) as f32 * 0.02 - 0.16
    });
    let fc = dfcnn::nn::Linear::new(fc_w, Tensor1::zeros(4), Activation::Identity);

    let (mut g, x) = GraphBuilder::new(input, config);
    let x = g.layer(x, Layer::Conv(trunk), LayerPorts::SINGLE).unwrap();
    let mut taps = g.fork(x, 2).unwrap();
    let skip = taps.pop().unwrap();
    let a = taps.pop().unwrap();
    let a = g.layer(a, Layer::Conv(branch), LayerPorts::SINGLE).unwrap();
    let a = g
        .layer(a, Layer::ScaleShift(bn), LayerPorts::SINGLE)
        .unwrap();
    let x = g.add(a, skip).unwrap();
    let x = g
        .layer(x, Layer::Flatten(Flatten::new(input)), LayerPorts::SINGLE)
        .unwrap();
    let x = g.layer(x, Layer::Linear(fc), LayerPorts::SINGLE).unwrap();
    g.finish(x).unwrap()
}

/// A random fork/join DAG: a trunk conv followed by a random sequence of
/// residual blocks — possibly nested (a fork inside a branch) and with
/// random ScaleShift / conv ops on either path — closed by flatten +
/// linear. Each block reconverges through either an eltwise-add or a
/// concat join (the concat doubles the FM count, and a 1×1 reducing conv
/// restores it). Every other op is shape-preserving (3×3 pad-1 convs),
/// so forks and joins always agree on geometry; the builder auto-sizes
/// every skip FIFO, so the result must be checker-clean and
/// deadlock-free.
pub fn random_dag_design(seed: u64, config: DesignConfig) -> NetworkDesign {
    use dfcnn::core::graph::{GraphBuilder, Tap};
    use dfcnn::nn::layer::{Flatten, Layer};
    use rand::Rng;

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let hw = rng.gen_range(6usize..10);
    let c = rng.gen_range(1usize..4);
    let input = Shape3::new(hw, hw, c);

    fn rand_conv(rng: &mut ChaCha8Rng, shape: Shape3) -> Layer {
        use rand::Rng;
        let geo = ConvGeometry::new(shape, 3, 3, 1, 1); // shape-preserving
        let (a, b, d, e) = (
            rng.gen_range(1usize..5),
            rng.gen_range(1usize..5),
            rng.gen_range(1usize..5),
            rng.gen_range(1usize..7),
        );
        let f = Tensor4::from_fn(shape.c, 3, 3, shape.c, move |k, y, x, ch| {
            ((a * k + b * y + d * x + ch) % e.max(2)) as f32 * 0.07 - 0.1
        });
        let act = match rng.gen_range(0..3) {
            0 => Activation::Tanh,
            1 => Activation::Relu,
            _ => Activation::Identity,
        };
        Layer::Conv(dfcnn::nn::Conv2d::new(geo, f, Tensor1::zeros(shape.c), act))
    }

    fn rand_scaleshift(rng: &mut ChaCha8Rng, shape: Shape3) -> Layer {
        use rand::Rng;
        let scale: Vec<f32> = (0..shape.c).map(|_| rng.gen_range(0.5f32..1.5)).collect();
        let shift: Vec<f32> = (0..shape.c).map(|_| rng.gen_range(-0.3f32..0.3)).collect();
        Layer::ScaleShift(dfcnn::nn::ScaleShift::new(shape, scale, shift))
    }

    /// A 1×1 conv halving the FM count (used after a concat join widens
    /// the stream to `2·c`, restoring the DAG's shape invariant).
    fn rand_reduce_conv(rng: &mut ChaCha8Rng, shape: Shape3) -> Layer {
        use rand::Rng;
        let out_c = shape.c / 2;
        let geo = ConvGeometry::new(shape, 1, 1, 1, 0);
        let (a, b) = (rng.gen_range(1usize..5), rng.gen_range(2usize..7));
        let f = Tensor4::from_fn(out_c, 1, 1, shape.c, move |k, _, _, ch| {
            ((a * k + ch) % b) as f32 * 0.09 - 0.1
        });
        Layer::Conv(dfcnn::nn::Conv2d::new(
            geo,
            f,
            Tensor1::zeros(out_c),
            Activation::Identity,
        ))
    }

    /// One block: either a plain op, or fork → branch ops (recursing for
    /// nesting) + optional skip-path op → add.
    fn block(
        g: &mut GraphBuilder,
        tap: Tap,
        rng: &mut ChaCha8Rng,
        shape: Shape3,
        depth: usize,
    ) -> Tap {
        use rand::Rng;
        if depth == 0 || rng.gen_bool(0.4) {
            let layer = if rng.gen_bool(0.5) {
                rand_conv(rng, shape)
            } else {
                rand_scaleshift(rng, shape)
            };
            return g.layer(tap, layer, LayerPorts::SINGLE).unwrap();
        }
        let mut taps = g.fork(tap, 2).unwrap();
        let skip = taps.pop().unwrap();
        let mut a = taps.pop().unwrap();
        for _ in 0..rng.gen_range(1usize..3) {
            a = block(g, a, rng, shape, depth - 1);
        }
        // the skip path may itself carry an op — even a windowed one,
        // which makes *both* reconvergent paths hold tokens back
        let skip = match rng.gen_range(0..4) {
            0 => g
                .layer(skip, rand_scaleshift(rng, shape), LayerPorts::SINGLE)
                .unwrap(),
            1 => g
                .layer(skip, rand_conv(rng, shape), LayerPorts::SINGLE)
                .unwrap(),
            _ => skip,
        };
        if rng.gen_bool(0.33) {
            // concat join: the stream widens to 2c, and a 1×1 reducing
            // conv restores the block's shape invariant
            let wide = g.concat(a, skip).unwrap();
            let wide_shape = Shape3::new(shape.h, shape.w, 2 * shape.c);
            g.layer(wide, rand_reduce_conv(rng, wide_shape), LayerPorts::SINGLE)
                .unwrap()
        } else {
            g.add(a, skip).unwrap()
        }
    }

    let (mut g, mut tap) = GraphBuilder::new(input, config);
    tap = g
        .layer(tap, rand_conv(&mut rng, input), LayerPorts::SINGLE)
        .unwrap();
    // sequential skips: several blocks back to back
    for _ in 0..rng.gen_range(1usize..4) {
        tap = block(&mut g, tap, &mut rng, input, 2);
    }
    let classes = rng.gen_range(2usize..6);
    let fc_w = {
        let (a, b) = (rng.gen_range(1usize..29), rng.gen_range(1usize..13));
        Tensor4::from_fn(classes, 1, 1, input.len(), move |j, _, _, i| {
            ((a * j + b * i) % 23) as f32 * 0.015 - 0.12
        })
    };
    let fc = dfcnn::nn::Linear::new(fc_w, Tensor1::zeros(classes), Activation::Identity);
    tap = g
        .layer(tap, Layer::Flatten(Flatten::new(input)), LayerPorts::SINGLE)
        .unwrap();
    tap = g.layer(tap, Layer::Linear(fc), LayerPorts::SINGLE).unwrap();
    g.finish(tap).unwrap()
}

/// Pick a random valid port configuration for a built network: each conv
/// or pool layer gets random divisors of its FM counts; FC stays single.
pub fn random_ports(spec: &NetworkSpec, seed: u64) -> PortConfig {
    use rand::Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let shapes = spec.shapes();
    let mut layers = Vec::new();
    for (i, l) in spec.layers.iter().enumerate() {
        let in_c = shapes[i].c;
        let out_c = shapes[i + 1].c;
        let pick = |n: usize, rng: &mut ChaCha8Rng| {
            let divs: Vec<usize> = (1..=n.min(6)).filter(|p| n.is_multiple_of(*p)).collect();
            divs[rng.gen_range(0..divs.len())]
        };
        match l {
            LayerSpec::Conv { .. } | LayerSpec::Pool { .. } => layers.push(LayerPorts {
                in_ports: pick(in_c, &mut rng),
                out_ports: pick(out_c, &mut rng),
            }),
            LayerSpec::Linear { .. } => layers.push(LayerPorts::SINGLE),
            _ => {}
        }
    }
    PortConfig { layers }
}
