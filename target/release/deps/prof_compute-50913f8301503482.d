/root/repo/target/release/deps/prof_compute-50913f8301503482.d: crates/bench/src/bin/prof_compute.rs

/root/repo/target/release/deps/prof_compute-50913f8301503482: crates/bench/src/bin/prof_compute.rs

crates/bench/src/bin/prof_compute.rs:
