//! The offline training step that produces the weights the accelerator
//! hardcodes (§IV-A: weights are "defined at design time and therefore
//! hardcoded in on-chip memory").
//!
//! Plain minibatch SGD with momentum and NLL loss — entirely adequate for
//! the paper's two small topologies on the synthetic datasets, and fully
//! deterministic given a seeded RNG and a fixed sample order.

use crate::loss::Nll;
use crate::network::{LayerGrads, Network};
use dfcnn_tensor::Tensor3;

/// Hyper-parameters for [`Trainer`].
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Number of passes over the training set.
    pub epochs: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lr: 0.05,
            momentum: 0.9,
            batch_size: 16,
            epochs: 5,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean NLL loss over the epoch.
    pub mean_loss: f32,
    /// Training accuracy over the epoch.
    pub accuracy: f64,
}

/// Minibatch SGD trainer with momentum.
pub struct Trainer {
    config: TrainConfig,
    velocity: Option<Vec<LayerGrads>>,
}

impl Trainer {
    /// Create a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Trainer {
            config,
            velocity: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Train `net` in place on `(input, label)` samples; returns per-epoch
    /// statistics. Samples are visited in the given order (shuffle upstream
    /// with a seeded RNG if desired — we keep this deterministic).
    pub fn fit(&mut self, net: &mut Network, samples: &[(Tensor3<f32>, usize)]) -> Vec<EpochStats> {
        assert!(!samples.is_empty(), "cannot train on an empty set");
        let mut stats = Vec::with_capacity(self.config.epochs);
        for epoch in 0..self.config.epochs {
            let mut loss_sum = 0.0f64;
            let mut correct = 0usize;
            for chunk in samples.chunks(self.config.batch_size) {
                let mut grads = net.zero_grads();
                for (x, label) in chunk {
                    let trace = net.forward_trace(x);
                    let out = trace.last().unwrap();
                    loss_sum += Nll::value(out, *label) as f64;
                    if out.flatten().argmax() == *label {
                        correct += 1;
                    }
                    let gl = Nll::grad(out, *label);
                    net.backward(&trace, &gl, &mut grads);
                }
                self.step(net, &mut grads, chunk.len());
            }
            stats.push(EpochStats {
                epoch,
                mean_loss: (loss_sum / samples.len() as f64) as f32,
                accuracy: correct as f64 / samples.len() as f64,
            });
        }
        stats
    }

    /// One optimiser step given summed minibatch gradients.
    fn step(&mut self, net: &mut Network, grads: &mut [LayerGrads], batch: usize) {
        let scale = 1.0 / batch as f32;
        scale_grads(grads, scale);
        if self.config.momentum > 0.0 {
            let vel = self.velocity.get_or_insert_with(|| net.zero_grads());
            blend_velocity(vel, grads, self.config.momentum);
            // copy velocity into grads so apply_grads sees the blended step
            clone_into(vel, grads);
        }
        net.apply_grads(grads, self.config.lr);
    }
}

fn scale_grads(grads: &mut [LayerGrads], scale: f32) {
    for g in grads {
        match g {
            LayerGrads::Conv(cg) => {
                cg.filters
                    .as_mut_slice()
                    .iter_mut()
                    .for_each(|v| *v *= scale);
                cg.bias.as_mut_slice().iter_mut().for_each(|v| *v *= scale);
            }
            LayerGrads::Linear(lg) => {
                lg.weights
                    .as_mut_slice()
                    .iter_mut()
                    .for_each(|v| *v *= scale);
                lg.bias.as_mut_slice().iter_mut().for_each(|v| *v *= scale);
            }
            LayerGrads::None => {}
        }
    }
}

/// `vel = momentum * vel + grad`
fn blend_velocity(vel: &mut [LayerGrads], grads: &[LayerGrads], momentum: f32) {
    for (v, g) in vel.iter_mut().zip(grads.iter()) {
        match (v, g) {
            (LayerGrads::Conv(vc), LayerGrads::Conv(gc)) => {
                for (a, b) in vc
                    .filters
                    .as_mut_slice()
                    .iter_mut()
                    .zip(gc.filters.as_slice())
                {
                    *a = momentum * *a + b;
                }
                for (a, b) in vc.bias.as_mut_slice().iter_mut().zip(gc.bias.as_slice()) {
                    *a = momentum * *a + b;
                }
            }
            (LayerGrads::Linear(vl), LayerGrads::Linear(gl)) => {
                for (a, b) in vl
                    .weights
                    .as_mut_slice()
                    .iter_mut()
                    .zip(gl.weights.as_slice())
                {
                    *a = momentum * *a + b;
                }
                for (a, b) in vl.bias.as_mut_slice().iter_mut().zip(gl.bias.as_slice()) {
                    *a = momentum * *a + b;
                }
            }
            _ => {}
        }
    }
}

fn clone_into(src: &[LayerGrads], dst: &mut [LayerGrads]) {
    for (s, d) in src.iter().zip(dst.iter_mut()) {
        *d = s.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::Activation;
    use crate::layer::{Layer, Linear, LogSoftmax};
    use dfcnn_tensor::{Shape3, Tensor1};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Linearly-separable two-class toy problem on 4 inputs.
    fn toy_samples() -> Vec<(Tensor3<f32>, usize)> {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut samples = Vec::new();
        for i in 0..64 {
            let label = i % 2;
            let base = if label == 0 { 1.0 } else { -1.0 };
            let x = dfcnn_tensor::init::random_volume(&mut rng, Shape3::new(1, 1, 4), -0.2, 0.2)
                .map(|v| v + base);
            samples.push((x, label));
        }
        samples
    }

    fn toy_net(seed: u64) -> Network {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = dfcnn_tensor::init::linear_weights(&mut rng, 4, 2);
        Network::new()
            .with(Layer::Linear(Linear::new(
                w,
                Tensor1::zeros(2),
                Activation::Identity,
            )))
            .with(Layer::LogSoftmax(LogSoftmax::new(2)))
    }

    #[test]
    fn training_reduces_loss_and_reaches_full_accuracy() {
        let mut net = toy_net(3);
        let samples = toy_samples();
        let mut trainer = Trainer::new(TrainConfig {
            lr: 0.1,
            momentum: 0.9,
            batch_size: 8,
            epochs: 10,
        });
        let stats = trainer.fit(&mut net, &samples);
        assert!(stats.last().unwrap().mean_loss < stats[0].mean_loss);
        assert_eq!(stats.last().unwrap().accuracy, 1.0);
    }

    #[test]
    fn training_is_deterministic() {
        let samples = toy_samples();
        let run = || {
            let mut net = toy_net(3);
            let mut tr = Trainer::new(TrainConfig::default());
            tr.fit(&mut net, &samples);
            net.scores(&samples[0].0).into_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn momentum_zero_is_plain_sgd() {
        let samples = toy_samples();
        let mut net = toy_net(5);
        let mut tr = Trainer::new(TrainConfig {
            lr: 0.05,
            momentum: 0.0,
            batch_size: 64,
            epochs: 1,
        });
        let s = tr.fit(&mut net, &samples);
        assert_eq!(s.len(), 1);
        assert!(s[0].mean_loss.is_finite());
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_training_set_rejected() {
        let mut net = toy_net(1);
        Trainer::new(TrainConfig::default()).fit(&mut net, &[]);
    }
}
