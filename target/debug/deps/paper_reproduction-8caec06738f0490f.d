/root/repo/target/debug/deps/paper_reproduction-8caec06738f0490f.d: tests/paper_reproduction.rs

/root/repo/target/debug/deps/paper_reproduction-8caec06738f0490f: tests/paper_reproduction.rs

tests/paper_reproduction.rs:
