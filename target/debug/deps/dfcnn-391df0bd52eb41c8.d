/root/repo/target/debug/deps/dfcnn-391df0bd52eb41c8.d: src/lib.rs

/root/repo/target/debug/deps/libdfcnn-391df0bd52eb41c8.rlib: src/lib.rs

/root/repo/target/debug/deps/libdfcnn-391df0bd52eb41c8.rmeta: src/lib.rs

src/lib.rs:
