//! Static design verifier: proves deadlock-freedom, buffer bounds and
//! rate consistency **before a single cycle is simulated**.
//!
//! A [`crate::graph::NetworkDesign`] is a synchronous dataflow graph with
//! statically-known token rates: every core's per-image input and output
//! volumes, its Eq. 4 initiation interval and — for windowed cores — the
//! SST full-buffering bound follow from the layer geometry alone. That
//! makes the three classic dataflow safety questions decidable here
//! without running the simulator:
//!
//! 1. **Rate conservation** (`rate-conservation`): on every edge of the
//!    core graph — linear chains and fork/join DAGs alike — producer and
//!    consumer must agree on port count and per-image token volume (a
//!    fork's output volume splits evenly over its branches; a join's
//!    input volume over its operands), the DMA source volume must match
//!    the first core, and the classifier head must emit exactly the
//!    width the sink collects. A violated edge is a starved or
//!    permanently backpressured channel — a deadlock the simulator can
//!    only find by stalling out.
//! 2. **Buffer sufficiency** (`buffer-sufficiency`): each windowed core's
//!    per-port line buffer must hold at least the full-buffering bound
//!    `((KH-1+pad)·W + KW) · CH/port` ([`crate::sst`]); below it the first
//!    window is *never* complete and the core provably deadlocks.
//!    Capacity above the bound is flagged as a BRAM-waste warning, as are
//!    extravagant inter-layer FIFO depths.
//! 3. **II consistency** (`ii-consistency`): every core's recorded Eq. 4
//!    initiation interval is recomputed from geometry via
//!    [`crate::model::CoreModel::static_profile`] and must match;
//!    [`check_drift`] extends the same cross-check to what a measured
//!    [`DriftReport`] observed at run time.
//! 4. **Replication soundness** (`replication-soundness`):
//!    [`ReplicationPlan`]s for the threaded engine are checked against the
//!    j-mod-r dealing protocol — order preservation needs one factor per
//!    stage and every factor ≥ 1 (worker `j mod r` must exist for every
//!    residue class), and factors beyond the host planner's cap of 4 are
//!    flagged.
//!
//! 5. **Reconvergence buffering** (`reconvergence-buffering`): in a
//!    fork/join design, while the windowed path of a reconvergent pair
//!    fills its line buffers the join consumes nothing, so every value
//!    the fork pushes down the sibling path in that window must fit in
//!    that path's FIFOs — `capacity(A) ≥ holdback(B)` for each ordered
//!    path pair entering the join on different edges
//!    ([`crate::graph::GraphBuilder`] auto-sizes skip FIFOs to satisfy
//!    this; `DesignConfig::skip_fifo_cap` seeds the violation).
//!
//! Port-divisibility legality (`port-legality`) is reported by
//! [`check_network`], which maps each layer model's validation errors onto
//! diagnostics carrying the offending core's name.
//!
//! Every rule yields a typed [`DesignDiagnostic`] (severity, rule id, core
//! name, explanation, suggested fix) collected in a [`CheckReport`]. CI
//! and the `pipeline_check` bench binary run [`check_design`] over the
//! paper designs and every DSE candidate; `tests/static_check.rs` pins
//! that each seeded violation class is rejected with the expected rule id
//! *and* independently confirmed by the cycle simulator deadlocking.

use crate::exec::ReplicationPlan;
use crate::graph::{DesignConfig, NetworkDesign, PortConfig};
use crate::model;
use crate::observe::DriftReport;
use dfcnn_nn::Network;
use std::fmt;

/// Inter-layer FIFO depths above this are flagged as BRAM waste.
const FIFO_WASTE_DEPTH: usize = 64;

/// The threaded-engine host planner caps replication factors here
/// ([`crate::exec::ThreadedEngine::plan_for_host`]).
const REPLICATION_CAP: usize = 4;

/// How bad a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The design works but wastes resources or invites trouble.
    Warning,
    /// The design is provably broken (deadlock, wrong output, bad plan).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which static rule produced a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleId {
    /// Per-edge token production/consumption rates must balance.
    RateConservation,
    /// Line buffers must meet the SST full-buffering bound; FIFOs and
    /// buffers beyond their bounds are waste.
    BufferSufficiency,
    /// Recorded Eq. 4 IIs must match the geometry-derived recomputation.
    IiConsistency,
    /// Replication plans must satisfy the j-mod-r order-preservation
    /// protocol.
    ReplicationSoundness,
    /// Port counts must be non-zero divisors of the FM counts.
    PortLegality,
    /// Reconvergent fork/join path pairs must buffer the sibling path's
    /// line-buffer holdback.
    ReconvergenceBuffering,
    /// Statically proven value intervals must fit the fixed-point
    /// container (error), with at least one bit of headroom (warning).
    ValueRange,
    /// The exact-sum i64 accumulator must provably never wrap.
    AccumulatorWidth,
}

impl RuleId {
    /// Stable kebab-case rule identifier, as printed in diagnostics.
    pub fn id(&self) -> &'static str {
        match self {
            RuleId::RateConservation => "rate-conservation",
            RuleId::BufferSufficiency => "buffer-sufficiency",
            RuleId::IiConsistency => "ii-consistency",
            RuleId::ReplicationSoundness => "replication-soundness",
            RuleId::PortLegality => "port-legality",
            RuleId::ReconvergenceBuffering => "reconvergence-buffering",
            RuleId::ValueRange => "value-range",
            RuleId::AccumulatorWidth => "accumulator-width",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding of the static verifier.
#[derive(Clone, Debug)]
pub struct DesignDiagnostic {
    /// Error (provably broken) or warning (wasteful/suspicious).
    pub severity: Severity,
    /// The rule that fired.
    pub rule: RuleId,
    /// The core (or boundary / plan element) the finding is about.
    pub core: String,
    /// What is wrong, with the numbers that prove it.
    pub message: String,
    /// What to change to fix it.
    pub fix: String,
}

impl fmt::Display for DesignDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {} (fix: {})",
            self.severity, self.rule, self.core, self.message, self.fix
        )
    }
}

/// The verifier's verdict on one design: every diagnostic, in rule order.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// All findings (errors and warnings).
    pub diagnostics: Vec<DesignDiagnostic>,
}

impl CheckReport {
    /// The provably-broken findings.
    pub fn errors(&self) -> Vec<&DesignDiagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    /// The wasteful/suspicious findings.
    pub fn warnings(&self) -> Vec<&DesignDiagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .collect()
    }

    /// No errors — the design is proven deadlock-free, rate-consistent
    /// and correctly buffered (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.errors().is_empty()
    }

    /// Whether the design is free of *structural* errors — rates,
    /// buffers, IIs, ports, replication. Numeric-range findings
    /// (`value-range`, `accumulator-width`) are excluded: they predict
    /// accuracy loss under a too-narrow format, not deadlock or engine
    /// disagreement — a saturating design still runs, clamping into its
    /// container (the `range` module's soundness tests depend on that).
    pub fn is_structurally_clean(&self) -> bool {
        self.errors()
            .iter()
            .all(|d| matches!(d.rule, RuleId::ValueRange | RuleId::AccumulatorWidth))
    }

    /// Whether some diagnostic fired with the given rule at the given
    /// severity (test helper and CLI filter).
    pub fn has(&self, severity: Severity, rule: RuleId) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == severity && d.rule == rule)
    }

    /// Console rendering: a summary line plus one line per diagnostic.
    pub fn render(&self) -> String {
        let mut out = format!(
            "design check: {} error(s), {} warning(s)\n",
            self.errors().len(),
            self.warnings().len()
        );
        for d in &self.diagnostics {
            out.push_str(&format!("  {d}\n"));
        }
        out
    }
}

fn diag(
    severity: Severity,
    rule: RuleId,
    core: impl Into<String>,
    message: String,
    fix: impl Into<String>,
) -> DesignDiagnostic {
    DesignDiagnostic {
        severity,
        rule,
        core: core.into(),
        message,
        fix: fix.into(),
    }
}

/// Run every static rule over a validated design.
pub fn check_design(design: &NetworkDesign) -> CheckReport {
    let mut diagnostics = Vec::new();
    rate_conservation(design, &mut diagnostics);
    buffer_sufficiency(design, &mut diagnostics);
    ii_consistency(design, &mut diagnostics);
    reconvergence_buffering(design, &mut diagnostics);
    value_ranges(design, &mut diagnostics);
    CheckReport { diagnostics }
}

/// Rule 1: token rates must balance on every edge of the core graph.
///
/// For each producer→consumer edge the producer's port count must equal
/// the consumer's (the builder inserts demux/widen adapters to guarantee
/// this; [`DesignConfig::omit_adapters`] seeds the violation) and the
/// producer's per-image per-edge output volume — recomputed from
/// geometry by [`model::CoreModel::static_profile`], split evenly over
/// its out-edges — must equal the consumer's per-edge input volume. The
/// consumer side comes from [`model::CoreModel::in_edge_volumes`]: an
/// even split of its per-image volume for symmetric kinds, per-operand
/// volumes for asymmetric joins like concat (whose two operands stream
/// different FM counts). On linear chains both degrees are 1 and this
/// reduces to the classic boundary check. The source must supply exactly
/// the first core's volume and the classifier head must emit the width
/// the sink collects.
fn rate_conservation(design: &NetworkDesign, out: &mut Vec<DesignDiagnostic>) {
    let cores = design.cores();
    if cores.is_empty() {
        return;
    }
    use crate::graph::NodeRef;
    let input_volume = design.network().input_shape().len() as u64;
    let classes = design.classes() as u64;
    // per-consumer in-edge ordinal: edges() lists a join's operand edges
    // in wiring order, and in_edge_volumes returns volumes in that order
    let mut next_in_edge = vec![0usize; cores.len()];
    for e in design.edges() {
        if let NodeRef::Core(j) = e.to {
            next_in_edge[j] += 1;
        }
        match (e.from, e.to) {
            (NodeRef::Source, NodeRef::Core(i)) => {
                let first = &cores[i];
                if first.in_values_per_image != input_volume {
                    out.push(diag(
                        Severity::Error,
                        RuleId::RateConservation,
                        format!("dma-source\u{2192}{}", first.name),
                        format!(
                            "the DMA source streams {input_volume} values per image but {} \
                             consumes {} per image",
                            first.name, first.in_values_per_image
                        ),
                        "the first layer's input geometry must match the network input shape",
                    ));
                }
            }
            (NodeRef::Core(i), NodeRef::Core(j)) => {
                let (a, b) = (&cores[i], &cores[j]);
                let profile = model::model_for(a.params.kind).static_profile(design, a);
                if a.params.out_ports != b.params.in_ports {
                    out.push(diag(
                        Severity::Error,
                        RuleId::RateConservation,
                        format!("{}\u{2192}{}", a.name, b.name),
                        format!(
                            "{} emits on {} port(s) but {} reads {} port(s): the surplus \
                             side starves or backpressures forever (deadlock)",
                            a.name, a.params.out_ports, b.name, b.params.in_ports
                        ),
                        "insert a demux/widen adapter at the boundary (clear omit_adapters)",
                    ));
                }
                let a_share =
                    profile.out_values_per_image / design.core_out_degree(i).max(1) as u64;
                let expected = model::model_for(b.params.kind).in_edge_volumes(
                    design,
                    b,
                    design.core_in_degree(j),
                );
                let b_share = expected.get(next_in_edge[j] - 1).copied().unwrap_or(0);
                if a_share != b_share {
                    out.push(diag(
                        Severity::Error,
                        RuleId::RateConservation,
                        format!("{}\u{2192}{}", a.name, b.name),
                        format!(
                            "{} produces {} values per image but {} consumes {}",
                            a.name, a_share, b.name, b_share
                        ),
                        "the consumer's input geometry must equal the producer's output geometry",
                    ));
                }
            }
            (NodeRef::Core(i), NodeRef::Sink) => {
                let last = &cores[i];
                let last_out = model::model_for(last.params.kind)
                    .static_profile(design, last)
                    .out_values_per_image
                    / design.core_out_degree(i).max(1) as u64;
                if classes != 0 && last_out != classes {
                    out.push(diag(
                        Severity::Error,
                        RuleId::RateConservation,
                        format!("{}\u{2192}sink", last.name),
                        format!(
                            "{} emits {last_out} values per image but the sink collects \
                             {classes} classifier scores",
                            last.name
                        ),
                        "the classifier head must emit exactly the sink's class count",
                    ));
                }
            }
            _ => {}
        }
    }
    // interleave legality of every core, adapters included: the FM
    // round-robin dealing needs exact groups on both sides
    for c in cores {
        let p = &c.params;
        if p.in_ports == 0 || p.out_ports == 0 {
            out.push(diag(
                Severity::Error,
                RuleId::RateConservation,
                c.name.clone(),
                "zero port count: no channel carries the stream".to_string(),
                "port counts must be at least 1",
            ));
            continue;
        }
        if p.in_fm % p.in_ports != 0 || p.out_fm % p.out_ports != 0 {
            out.push(diag(
                Severity::Error,
                RuleId::RateConservation,
                c.name.clone(),
                format!(
                    "FM interleave is not exact: IN_FM {} over {} port(s), \
                     OUT_FM {} over {} port(s)",
                    p.in_fm, p.in_ports, p.out_fm, p.out_ports
                ),
                "ports must divide the FM counts for round-robin interleaving",
            ));
        }
    }
}

/// Rule 2: every buffer must be deep enough — and not absurdly deeper.
///
/// A windowed core's per-port line buffer below the SST full-buffering
/// bound can never complete its first window: provable deadlock, error.
/// Above the bound it only burns BRAM: warning. Inter-layer FIFOs of
/// depth 0 can never pass a token (error); beyond [`FIFO_WASTE_DEPTH`]
/// they are flagged as waste.
fn buffer_sufficiency(design: &NetworkDesign, out: &mut Vec<DesignDiagnostic>) {
    for c in design.cores() {
        let profile = model::model_for(c.params.kind).static_profile(design, c);
        let Some(lb) = profile.line_buffer else {
            continue;
        };
        if lb.capacity_per_port < lb.required_per_port {
            out.push(diag(
                Severity::Error,
                RuleId::BufferSufficiency,
                c.name.clone(),
                format!(
                    "line buffer holds {} values per port but the SST \
                     full-buffering bound is {}: the first window can never \
                     complete (deadlock)",
                    lb.capacity_per_port, lb.required_per_port
                ),
                "raise the capacity to the bound (clear line_buffer_cap)",
            ));
        } else if lb.capacity_per_port > lb.required_per_port {
            out.push(diag(
                Severity::Warning,
                RuleId::BufferSufficiency,
                c.name.clone(),
                format!(
                    "line buffer holds {} values per port but {} suffice \
                     (SST full-buffering bound): the surplus is wasted BRAM",
                    lb.capacity_per_port, lb.required_per_port
                ),
                "size the line buffer exactly at the bound",
            ));
        }
    }
    let depth = design.config().inter_fifo_depth;
    if depth == 0 {
        out.push(diag(
            Severity::Error,
            RuleId::BufferSufficiency,
            "inter-layer FIFOs",
            "FIFO depth 0: no token can ever cross a layer boundary (deadlock)".to_string(),
            "inter_fifo_depth must be at least 1",
        ));
    } else if depth > FIFO_WASTE_DEPTH {
        out.push(diag(
            Severity::Warning,
            RuleId::BufferSufficiency,
            "inter-layer FIFOs",
            format!(
                "FIFO depth {depth} exceeds {FIFO_WASTE_DEPTH}: decoupling needs \
                 only a few slots, the rest is wasted BRAM"
            ),
            "reduce inter_fifo_depth",
        ));
    }
}

/// Rule 3: each core's recorded Eq. 4 II must equal the II recomputed
/// from the layer geometry and port choice.
fn ii_consistency(design: &NetworkDesign, out: &mut Vec<DesignDiagnostic>) {
    for c in design.cores() {
        let profile = model::model_for(c.params.kind).static_profile(design, c);
        if c.params.ii != profile.expected_ii {
            out.push(diag(
                Severity::Error,
                RuleId::IiConsistency,
                c.name.clone(),
                format!(
                    "recorded II {} but Eq. 4 gives {} for {} FMs on {} \
                     port(s) \u{2192} {} FMs on {} port(s)",
                    c.params.ii,
                    profile.expected_ii,
                    c.params.in_fm,
                    c.params.in_ports,
                    c.params.out_fm,
                    c.params.out_ports
                ),
                "recompute the II via Eq. 4 (max(IN_FM/IN_PORTS, OUT_FM/OUT_PORTS))",
            ));
        }
    }
}

/// Rule 5: every reconvergent fork/join path pair must buffer the
/// sibling path's holdback.
///
/// While the windowed path of a reconvergent pair fills its line buffers
/// it emits nothing, so the join consumes nothing — and every value the
/// fork pushes down the *other* path in that window must fit in that
/// path's FIFOs and line buffers. If the sibling path's capacity is
/// below the windowed path's SST holdback, the fork backpressures, the
/// windowed path starves mid-fill and the graph provably deadlocks
/// ([`crate::graph`] derives both numbers statically; the builder
/// auto-sizes skip FIFOs to satisfy the bound unless
/// [`DesignConfig::skip_fifo_cap`] clamps them).
fn reconvergence_buffering(design: &NetworkDesign, out: &mut Vec<DesignDiagnostic>) {
    for d in crate::graph::reconvergence_deficits(design) {
        out.push(diag(
            Severity::Error,
            RuleId::ReconvergenceBuffering,
            format!("{}\u{2192}{}", d.fork, d.join),
            format!(
                "the path from {} to {} buffers only {} values but its sibling \
                 path holds back {} values while filling line buffers: the fork \
                 backpressures before the join sees a token (deadlock)",
                d.fork, d.join, d.capacity, d.required
            ),
            "deepen the skip-path FIFO to cover the sibling's line-buffer holdback \
             (clear skip_fifo_cap)",
        ));
    }
}

/// Rules 7 & 8: the value-range analyzer's proofs
/// ([`crate::range::analyze`]) must hold under the design's fixed-point
/// format.
///
/// - `value-range` (error): a core's pre-saturation interval escapes the
///   container, so the saturating narrow can clip real activations — the
///   statically-predicted form of the q8f6 accuracy collapse measured in
///   `BENCH_kernels.json`.
/// - `value-range` (warning): the interval fits but with under one bit of
///   headroom; a slightly different input scale would saturate.
/// - `accumulator-width` (error): the worst-case exact-sum magnitude
///   exceeds `i64`, so the accumulator itself could wrap (no saturation
///   guards it — the whole point of the exact-sum contract is that it
///   never needs them).
///
/// Float designs are skipped: they have no container and their
/// accumulators cannot wrap.
fn value_ranges(design: &NetworkDesign, out: &mut Vec<DesignDiagnostic>) {
    let spec = design.config().numeric;
    if !spec.is_fixed() {
        return;
    }
    let report = crate::range::analyze(design);
    let (clo, chi) = (report.container_lo, report.container_hi);
    for c in &report.cores {
        if c.saturation_possible {
            let frac_hint = match crate::range::recommend_frac(design, spec.storage_bits()) {
                Some(f) => format!("use frac={f} at this width"),
                None => "widen the storage (16-bit) or rescale the weights".to_string(),
            };
            out.push(diag(
                Severity::Error,
                RuleId::ValueRange,
                c.name.clone(),
                format!(
                    "pre-saturation values provably reach [{:.4}, {:.4}] but the {} \
                     container only holds [{:.4}, {:.4}]: the saturating narrow \
                     will clip real activations",
                    c.pre_lo.unwrap_or(c.out_lo),
                    c.pre_hi.unwrap_or(c.out_hi),
                    report.numeric,
                    clo.unwrap_or(f64::NEG_INFINITY),
                    chi.unwrap_or(f64::INFINITY),
                ),
                frac_hint,
            ));
        } else if let Some(h) = c.headroom_bits {
            if h < 1.0 {
                out.push(diag(
                    Severity::Warning,
                    RuleId::ValueRange,
                    c.name.clone(),
                    format!(
                        "only {h:.2} bits of headroom between the proven range \
                         [{:.4}, {:.4}] and the {} container",
                        c.pre_lo.unwrap_or(c.out_lo),
                        c.pre_hi.unwrap_or(c.out_hi),
                        report.numeric,
                    ),
                    "lower FRAC by one bit or rescale the preceding layer's weights",
                ));
            }
        }
        if !c.acc_safe {
            out.push(diag(
                Severity::Error,
                RuleId::AccumulatorWidth,
                c.name.clone(),
                format!(
                    "the exact-sum accumulator can reach 2^{:.1} at product scale, \
                     beyond the i64 it runs in",
                    c.acc_bits.unwrap_or(f64::NAN),
                ),
                "reduce FRAC (each bit halves the product scale) or split the layer",
            ));
        }
    }
}

/// Check a port configuration against a network *without* building a
/// design: every layer model's validation error becomes a
/// `port-legality` diagnostic carrying the offending core's name — the
/// same name [`NetworkDesign::new`] would have given it.
pub fn check_network(network: &Network, ports: &PortConfig, _config: &DesignConfig) -> CheckReport {
    let mut diagnostics = Vec::new();
    let paper: Vec<_> = network
        .layers()
        .iter()
        .filter(|l| model::paper_layer_model(l).is_some())
        .collect();
    if paper.len() != ports.layers.len() {
        diagnostics.push(diag(
            Severity::Error,
            RuleId::PortLegality,
            "port config",
            format!(
                "{} port entries for {} paper layers",
                ports.layers.len(),
                paper.len()
            ),
            "provide exactly one LayerPorts entry per conv/pool/linear layer",
        ));
        return CheckReport { diagnostics };
    }
    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    for (layer, lp) in paper.iter().zip(ports.layers.iter()) {
        let m = model::paper_layer_model(layer).expect("filtered to paper layers");
        let name = model::next_name(&mut counts, m.label());
        if let Err(msg) = m.validate(&name, layer, *lp) {
            diagnostics.push(diag(
                Severity::Error,
                RuleId::PortLegality,
                name,
                msg,
                "choose port counts that divide the layer's FM counts",
            ));
        }
    }
    CheckReport { diagnostics }
}

/// Rule 4: a [`ReplicationPlan`] is order-preserving under the threaded
/// engine's j-mod-r dealing iff it names one factor per stage and every
/// factor is ≥ 1 — image `j` is served by worker `j mod r`, so a zero
/// factor leaves residue classes with no worker (and the engine would
/// divide by zero), and a missing/extra stage entry desynchronises the
/// dealing between boundaries. Factors above the host planner's cap are
/// flagged: they oversubscribe the machine without raising throughput.
pub fn check_replication(plan: &ReplicationPlan, stage_count: usize) -> Vec<DesignDiagnostic> {
    let mut out = Vec::new();
    if plan.factors.len() != stage_count {
        out.push(diag(
            Severity::Error,
            RuleId::ReplicationSoundness,
            "replication plan",
            format!(
                "{} factors for {} pipeline stages: the j-mod-r dealing \
                 desynchronises across boundaries",
                plan.factors.len(),
                stage_count
            ),
            "provide exactly one factor per stage",
        ));
    }
    for (i, &f) in plan.factors.iter().enumerate() {
        if f == 0 {
            out.push(diag(
                Severity::Error,
                RuleId::ReplicationSoundness,
                format!("stage {i}"),
                "replication factor 0: no worker serves any image of this stage".to_string(),
                "factors must be \u{2265} 1",
            ));
        } else if f > REPLICATION_CAP {
            out.push(diag(
                Severity::Warning,
                RuleId::ReplicationSoundness,
                format!("stage {i}"),
                format!(
                    "replication factor {f} exceeds the host planner's cap of \
                     {REPLICATION_CAP}: extra workers contend without raising throughput"
                ),
                "cap factors at 4 (see ThreadedEngine::plan_for_host)",
            ));
        }
    }
    out
}

/// Close the static-vs-dynamic loop: cross-check a measured
/// [`DriftReport`] against the same analytical model the verifier proves
/// from. The predicted bottleneck and pipeline interval must agree, and
/// every measurement the report flagged as out of bounds becomes a typed
/// diagnostic.
pub fn check_drift(design: &NetworkDesign, report: &DriftReport) -> Vec<DesignDiagnostic> {
    let mut out = Vec::new();
    let (name, predicted) = design.estimated_bottleneck();
    if report.bottleneck_name != name || report.predicted_pipeline_interval != predicted {
        out.push(diag(
            Severity::Error,
            RuleId::IiConsistency,
            "pipeline",
            format!(
                "the drift report predicts bottleneck {} at {} cycles/image but \
                 the design derives {} at {}",
                report.bottleneck_name, report.predicted_pipeline_interval, name, predicted
            ),
            "rebuild the drift report from this design",
        ));
    }
    for c in &report.cores {
        if !c.within {
            out.push(diag(
                Severity::Error,
                RuleId::IiConsistency,
                c.name.clone(),
                format!(
                    "measured steady-state interval {:.1} cycles/image exceeds the \
                     Eq. 4 pipeline interval {} + fill {}",
                    c.measured_interval, report.predicted_pipeline_interval, report.bottleneck_fill
                ),
                "the core runs slower than its geometry predicts; re-derive its II",
            ));
        }
    }
    for b in &report.buffers {
        if !b.within {
            out.push(diag(
                Severity::Error,
                RuleId::BufferSufficiency,
                b.name.clone(),
                format!(
                    "line-buffer high-water mark {} exceeds the full-buffering \
                     bound {}",
                    b.hwm, b.bound
                ),
                "the SST bound no longer covers this geometry; re-derive it",
            ));
        }
    }
    for f in &report.fifos {
        if !f.within {
            out.push(diag(
                Severity::Error,
                RuleId::BufferSufficiency,
                format!("fifo {}", f.channel),
                format!(
                    "occupancy high-water mark {} exceeds capacity {}",
                    f.hwm, f.capacity
                ),
                "a FIFO overflowed its declared capacity; check the channel model",
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LayerPorts, PortConfig};
    use dfcnn_nn::topology::NetworkSpec;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tc1_network() -> Network {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        NetworkSpec::test_case_1().build(&mut rng)
    }

    fn tc1_design(config: DesignConfig) -> NetworkDesign {
        NetworkDesign::new(&tc1_network(), PortConfig::paper_test_case_1(), config).unwrap()
    }

    #[test]
    fn paper_design_is_clean() {
        let report = check_design(&tc1_design(DesignConfig::default()));
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.warnings().is_empty(), "{}", report.render());
    }

    #[test]
    fn tampered_ii_is_caught_with_the_core_name() {
        let mut d = tc1_design(DesignConfig::default());
        d.cores_mut()[0].params.ii += 3;
        let report = check_design(&d);
        assert!(report.has(Severity::Error, RuleId::IiConsistency));
        let errs = report.errors();
        assert!(
            errs.iter().any(|e| e.core == "conv1"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn tampered_volume_breaks_rate_conservation() {
        let mut d = tc1_design(DesignConfig::default());
        // pool1 claims to consume fewer values than conv1 produces
        d.cores_mut()[1].in_values_per_image -= 1;
        let report = check_design(&d);
        assert!(report.has(Severity::Error, RuleId::RateConservation));
        assert!(
            report.errors().iter().any(|e| e.core.contains("pool1")),
            "{}",
            report.render()
        );
    }

    #[test]
    fn undersized_line_buffer_is_an_error_oversized_a_warning() {
        let under = DesignConfig {
            line_buffer_cap: Some(4),
            ..DesignConfig::default()
        };
        let report = check_design(&tc1_design(under));
        assert!(report.has(Severity::Error, RuleId::BufferSufficiency));
        // TC1 conv1 bound: (5-1)*16 + 5 = 69 per port; 1000 over-provisions
        // every windowed core without breaking any
        let over = DesignConfig {
            line_buffer_cap: Some(1000),
            ..DesignConfig::default()
        };
        let report = check_design(&tc1_design(over));
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.has(Severity::Warning, RuleId::BufferSufficiency));
    }

    #[test]
    fn omitted_adapter_breaks_rate_conservation() {
        // conv1 emits 2 ports, pool1 reads 1: needs a widen adapter
        let ports = PortConfig {
            layers: vec![
                LayerPorts {
                    in_ports: 1,
                    out_ports: 2,
                },
                LayerPorts::SINGLE,
                LayerPorts::SINGLE,
                LayerPorts::SINGLE,
            ],
        };
        let config = DesignConfig {
            omit_adapters: true,
            ..DesignConfig::default()
        };
        let d = NetworkDesign::new(&tc1_network(), ports.clone(), config).unwrap();
        let report = check_design(&d);
        assert!(report.has(Severity::Error, RuleId::RateConservation));
        assert!(
            report
                .errors()
                .iter()
                .any(|e| e.message.contains("port(s)")),
            "{}",
            report.render()
        );
        // the same ports with adapters inserted are clean
        let healthy = NetworkDesign::new(&tc1_network(), ports, DesignConfig::default()).unwrap();
        assert!(check_design(&healthy).is_clean());
    }

    #[test]
    fn fifo_depth_bounds() {
        let zero = DesignConfig {
            inter_fifo_depth: 0,
            ..DesignConfig::default()
        };
        let report = check_design(&tc1_design(zero));
        assert!(report.has(Severity::Error, RuleId::BufferSufficiency));
        let deep = DesignConfig {
            inter_fifo_depth: 512,
            ..DesignConfig::default()
        };
        let report = check_design(&tc1_design(deep));
        assert!(report.is_clean());
        assert!(report.has(Severity::Warning, RuleId::BufferSufficiency));
    }

    #[test]
    fn check_network_names_the_offending_core() {
        let mut ports = PortConfig::single_port(4);
        ports.layers[0].out_ports = 4; // 6 FMs not divisible by 4
        let report = check_network(&tc1_network(), &ports, &DesignConfig::default());
        assert!(report.has(Severity::Error, RuleId::PortLegality));
        let errs = report.errors();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].core, "conv1");
        assert!(errs[0].message.contains("does not divide"));
        // wrong entry count short-circuits
        let report = check_network(
            &tc1_network(),
            &PortConfig::single_port(3),
            &DesignConfig::default(),
        );
        assert!(report.has(Severity::Error, RuleId::PortLegality));
    }

    #[test]
    fn replication_plan_rules() {
        assert!(check_replication(&ReplicationPlan::uniform(5), 5).is_empty());
        let bad_len = ReplicationPlan {
            factors: vec![1, 1],
        };
        let diags = check_replication(&bad_len, 5);
        assert!(diags
            .iter()
            .any(|d| d.severity == Severity::Error && d.rule == RuleId::ReplicationSoundness));
        let zero = ReplicationPlan {
            factors: vec![1, 0, 1],
        };
        let diags = check_replication(&zero, 3);
        assert!(diags.iter().any(|d| d.severity == Severity::Error));
        let oversub = ReplicationPlan {
            factors: vec![1, 9, 1],
        };
        let diags = check_replication(&oversub, 3);
        assert!(diags.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn residual_graph_is_clean() {
        let d = crate::graph::fixtures::residual_graph(DesignConfig::default());
        let report = check_design(&d);
        assert!(report.is_clean(), "{}", report.render());
    }

    fn inception_design() -> NetworkDesign {
        use dfcnn_nn::topology::GraphSpec;
        let spec = GraphSpec::inception_cell();
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let layers = spec.build_layers(&mut rng);
        let ports = PortConfig::single_port(spec.paper_depth());
        crate::graph::build_graph_design(&spec, &layers, &ports, DesignConfig::default()).unwrap()
    }

    #[test]
    fn concat_design_is_clean_despite_asymmetric_operands() {
        // a concat's two in-edges carry *different* volumes; the per-edge
        // in_edge_volumes hook must keep the even-split rule from firing
        let report = check_design(&inception_design());
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn tampered_concat_volume_breaks_rate_conservation() {
        let mut d = inception_design();
        let idx = d
            .cores()
            .iter()
            .position(|c| c.name.starts_with("concat"))
            .unwrap();
        // the recorded operand edges no longer sum to the core's volume,
        // so the model falls back to an even split and the edges mismatch
        d.cores_mut()[idx].in_values_per_image -= 2;
        let report = check_design(&d);
        assert!(
            report.has(Severity::Error, RuleId::RateConservation),
            "{}",
            report.render()
        );
    }

    #[test]
    fn clamped_skip_fifo_breaks_reconvergence_buffering() {
        let d = crate::graph::fixtures::residual_graph(DesignConfig {
            skip_fifo_cap: Some(2),
            ..DesignConfig::default()
        });
        let report = check_design(&d);
        assert!(report.has(Severity::Error, RuleId::ReconvergenceBuffering));
        let errs = report.errors();
        assert!(
            errs.iter()
                .any(|e| e.core == "fork1\u{2192}add4" && e.message.contains("deadlock")),
            "{}",
            report.render()
        );
        assert!(
            report.render().contains("error[reconvergence-buffering]"),
            "{}",
            report.render()
        );
        // chains never trip the rule (no fork/join to pair up)
        let chain = check_design(&tc1_design(DesignConfig::default()));
        assert!(!chain.has(Severity::Error, RuleId::ReconvergenceBuffering));
    }

    #[test]
    fn diagnostics_render_with_rule_ids() {
        let mut d = tc1_design(DesignConfig::default());
        d.cores_mut()[0].params.ii = 99;
        let report = check_design(&d);
        let text = report.render();
        assert!(text.contains("error[ii-consistency] conv1"), "{text}");
        assert!(text.contains("fix:"), "{text}");
        assert!(!report.is_clean());
    }
}
