//! The scale-shift core — frozen (inference-time) batch normalisation on
//! the fabric.
//!
//! A trained batch-norm collapses to one `(γ', β')` pair per feature map
//! (see [`dfcnn_nn::layer::ScaleShift`]), which on a dataflow accelerator
//! is a stateless streaming core: two small coefficient ROMs, one
//! multiply and one add per value, no window, no reduction. It is a
//! *paper layer* in the builder's sense — it carries a
//! [`LayerPorts`] entry and an Eq. 4 II like conv/pool/FC — and its actor
//! streams in strict global FM order exactly like
//! [`crate::port::PortAdapter`], applying `y = scale[f]·x + shift[f]` on
//! the way through. The same flat-index expression
//! (`scale[i mod C]·x + shift[i mod C]`, channel-fastest storage) is used
//! by the network layer, the host pipeline worker and the actor, so all
//! three engines stay bit-identical.

use super::{CoreModel, CorePlan, StageSpec, StageWorker};
use crate::graph::{CoreInfo, DesignConfig, LayerPorts, NetworkDesign};
use crate::port::fm_port;
use crate::sim::{Actor, Quiescence, Wiring};
use crate::stream::{ChannelId, ChannelSet};
use crate::trace::{EventKind, Stall, Trace};
use dfcnn_fpga::resources::{CoreKind, CoreParams};
use dfcnn_hls::ii::pipeline_ii;
use dfcnn_nn::layer::Layer;
use dfcnn_tensor::{with_numeric, Element, Numeric, Tensor3};
use std::fmt::Write as _;

/// The scale-shift [`CoreModel`].
pub struct ScaleShiftModel;

fn scaleshift_of(layer: &Layer) -> &dfcnn_nn::layer::ScaleShift {
    match layer {
        Layer::ScaleShift(l) => l,
        _ => unreachable!("scaleshift model handed a different layer kind"),
    }
}

/// The streaming affine actor: values move in strict global FM order,
/// transformed per feature map on the way through. Generic over the
/// executed element type: the coefficient ROMs are quantised once at
/// build time; each value is quantised, transformed with the element's
/// multiply/add and dequantised (the identity chain for `f32`). `fm`
/// tracks the FM count (the quantised ROM length).
pub struct ScaleShiftCore<E: Numeric = f32> {
    name: String,
    in_chs: Vec<ChannelId>,
    out_chs: Vec<ChannelId>,
    scale: Vec<E>,
    shift: Vec<E>,
    seq: u64,
    moved: u64,
}

impl<E: Numeric> ScaleShiftCore<E> {
    /// Build the core; coefficient vectors carry one entry per FM.
    pub fn new(
        name: impl Into<String>,
        in_chs: Vec<ChannelId>,
        out_chs: Vec<ChannelId>,
        scale: Vec<f32>,
        shift: Vec<f32>,
    ) -> Self {
        assert_eq!(scale.len(), shift.len(), "one (scale, shift) pair per FM");
        assert!(
            !in_chs.is_empty() && !out_chs.is_empty(),
            "scaleshift needs ports"
        );
        assert_eq!(scale.len() % in_chs.len(), 0, "ports must divide FM count");
        assert_eq!(scale.len() % out_chs.len(), 0, "ports must divide FM count");
        ScaleShiftCore {
            name: name.into(),
            in_chs,
            out_chs,
            scale: scale.iter().map(|&v| E::from_f32(v)).collect(),
            shift: shift.iter().map(|&v| E::from_f32(v)).collect(),
            seq: 0,
            moved: 0,
        }
    }
}

impl<E: Numeric> Actor for ScaleShiftCore<E> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, cycle: u64, chans: &mut ChannelSet, trace: &mut Trace) {
        let n = self.in_chs.len();
        let m = self.out_chs.len();
        let fm = self.scale.len();
        let mut in_used = vec![false; n];
        let mut out_used = vec![false; m];
        // strict global order; stop at the first value that cannot move
        for _ in 0..n.max(m) {
            let f = (self.seq % fm as u64) as usize;
            let ip = fm_port(f, n);
            let op = fm_port(f, m);
            if in_used[ip] || out_used[op] {
                break;
            }
            let src = self.in_chs[ip];
            let dst = self.out_chs[op];
            if chans.peek(src).is_none() || !chans.can_push(dst) {
                break;
            }
            let v = chans.pop(src).unwrap();
            chans.push(
                dst,
                crate::kernel::scale_shift_hw::<E>(self.scale[f], self.shift[f], v),
            );
            in_used[ip] = true;
            out_used[op] = true;
            self.seq += 1;
            self.moved += 1;
            trace.record(cycle, &self.name, EventKind::Emit);
        }
    }

    fn busy(&self) -> bool {
        false // stateless between cycles: the ROMs never change
    }

    fn initiations(&self) -> u64 {
        self.moved
    }

    fn wiring(&self) -> Wiring {
        Wiring {
            inputs: self.in_chs.clone(),
            outputs: self.out_chs.clone(),
        }
    }

    fn quiescence(&self, _now: u64, chans: &ChannelSet) -> Quiescence {
        let f = (self.seq % self.scale.len() as u64) as usize;
        let src = self.in_chs[fm_port(f, self.in_chs.len())];
        let dst = self.out_chs[fm_port(f, self.out_chs.len())];
        if chans.peek(src).is_some() && chans.can_push(dst) {
            Quiescence::Active
        } else {
            Quiescence::Wait(None)
        }
    }

    fn stall(&self, chans: &ChannelSet) -> Stall {
        let f = (self.seq % self.scale.len() as u64) as usize;
        let ip = fm_port(f, self.in_chs.len());
        let op = fm_port(f, self.out_chs.len());
        if chans.peek(self.in_chs[ip]).is_none() {
            Stall::Starved(ip)
        } else if !chans.can_push(self.out_chs[op]) {
            Stall::Backpressured(op)
        } else {
            Stall::Computing // the move happens next tick
        }
    }
}

struct ScaleShiftWorker<E: Numeric> {
    scale: Vec<E>,
    shift: Vec<E>,
}

impl<E: Numeric> StageWorker for ScaleShiftWorker<E> {
    fn apply_into(&mut self, input: &Tensor3<f32>, out: &mut Tensor3<f32>) {
        let c = self.scale.len();
        for (i, (o, &x)) in out
            .as_mut_slice()
            .iter_mut()
            .zip(input.as_slice())
            .enumerate()
        {
            *o = crate::kernel::scale_shift_hw::<E>(self.scale[i % c], self.shift[i % c], x);
        }
    }
}

impl CoreModel for ScaleShiftModel {
    fn kind(&self) -> CoreKind {
        CoreKind::ScaleShift
    }

    fn label(&self) -> &'static str {
        "scaleshift"
    }

    fn feature_maps(&self, layer: &Layer) -> (usize, usize) {
        let c = scaleshift_of(layer).shape().c;
        (c, c)
    }

    fn plan(&self, layer: &Layer, lp: LayerPorts, _config: &DesignConfig) -> CorePlan {
        let shape = scaleshift_of(layer).shape();
        let c = shape.c;
        CorePlan {
            params: CoreParams {
                kind: CoreKind::ScaleShift,
                in_fm: c,
                out_fm: c,
                in_ports: lp.in_ports,
                out_ports: lp.out_ports,
                kh: 1,
                kw: 1,
                image_w: shape.w,
                ii: pipeline_ii(c, lp.in_ports, c, lp.out_ports),
                weights: 2 * c,
                accumulators: 1,
            },
            in_values_per_image: shape.len() as u64,
            positions: (shape.h * shape.w) as u64,
        }
    }

    fn estimate_interval(&self, core: &CoreInfo, _config: &DesignConfig) -> u64 {
        core.positions * core.params.ii as u64
    }

    fn range_transfer(
        &self,
        design: &NetworkDesign,
        core: &CoreInfo,
        spec: dfcnn_tensor::NumericSpec,
        inputs: &[crate::range::Interval],
    ) -> crate::range::Transfer {
        let idx = core.layer_index.expect("scale-shift core has a layer");
        let l = scaleshift_of(&design.network().layers()[idx]);
        let channels = l
            .scale()
            .iter()
            .zip(l.shift())
            .map(|(&s, &sh)| (f64::from(s), f64::from(sh)));
        crate::range::scale_shift_transfer(
            spec,
            crate::range::Interval::union_all(inputs),
            channels,
        )
    }

    fn block_label(&self, core: &CoreInfo) -> String {
        let p = &core.params;
        format!(
            "[{} scaleshift {}FM in:{} out:{} II={}]",
            core.name, p.in_fm, p.in_ports, p.out_ports, p.ii
        )
    }

    fn make_actor(
        &self,
        design: &NetworkDesign,
        core: &CoreInfo,
        in_chs: Vec<ChannelId>,
        out_chs: Vec<ChannelId>,
    ) -> Box<dyn Actor> {
        let idx = core.layer_index.expect("scaleshift cores are layer-backed");
        let l = scaleshift_of(&design.network().layers()[idx]);
        with_numeric!(design.config().numeric, E => Box::new(ScaleShiftCore::<E>::new(
            core.name.clone(),
            in_chs,
            out_chs,
            l.scale().to_vec(),
            l.shift().to_vec(),
        )))
    }

    fn emit_cpp(&self, design: &NetworkDesign, idx: usize) -> String {
        use crate::codegen::{header, interface_pragmas, stream_args, weight_array};
        let info = &design.cores()[idx];
        let p = &info.params;
        let layer_idx = info.layer_index.expect("scaleshift cores are layer-backed");
        let l = scaleshift_of(&design.network().layers()[layer_idx]);
        let mut s = header();
        s.push_str(&weight_array(&format!("{}_scale", info.name), l.scale()));
        s.push_str(&weight_array(&format!("{}_shift", info.name), l.shift()));
        let _ = write!(
            s,
            "// scale-shift core: frozen batch normalisation as a per-FM\n\
             // affine map y = scale[f] * x + shift[f], coefficients\n\
             // hardcoded in on-chip ROMs. Streams at line rate.\n\
             void {name}({ins}, {outs}) {{\n{ipr}{opr}\
             \x20   affine: for (int f = 0; ; f = (f + 1) % {fm}) {{\n\
             #pragma HLS PIPELINE II={ii}\n\
             \x20       out{o0}.write({name}_scale[f] * in{i0}.read() + {name}_shift[f]);\
             \x20// ports f % {ip} -> f % {op}\n\
             \x20   }}\n\
             }}\n",
            name = info.name,
            ins = stream_args("in", p.in_ports),
            outs = stream_args("out", p.out_ports),
            ipr = interface_pragmas("in", p.in_ports),
            opr = interface_pragmas("out", p.out_ports),
            fm = p.in_fm,
            ii = p.ii,
            ip = p.in_ports,
            op = p.out_ports,
            i0 = 0,
            o0 = 0,
        );
        s
    }

    fn stage(
        &self,
        name: String,
        layer: &Layer,
        _lp: LayerPorts,
        config: &DesignConfig,
    ) -> Option<StageSpec> {
        let l = scaleshift_of(layer);
        let (scale, shift) = (l.scale().to_vec(), l.shift().to_vec());
        Some(with_numeric!(config.numeric, E => StageSpec::new(
            name,
            l.shape(),
            move || {
                Box::new(ScaleShiftWorker::<E> {
                    scale: scale.iter().map(|&v| E::from_f32(v)).collect(),
                    shift: shift.iter().map(|&v| E::from_f32(v)).collect(),
                })
            },
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfcnn_nn::layer::ScaleShift;
    use dfcnn_tensor::Shape3;

    fn drive(core: &mut ScaleShiftCore<f32>, chans: &mut ChannelSet, cycles: usize) {
        let mut trace = Trace::disabled();
        for c in 0..cycles {
            core.tick(c as u64, chans, &mut trace);
            chans.commit_all();
        }
    }

    fn drain(chans: &mut ChannelSet, id: ChannelId) -> Vec<f32> {
        let mut v = Vec::new();
        while let Some(x) = chans.pop(id) {
            v.push(x);
        }
        v
    }

    #[test]
    fn actor_applies_the_affine_per_fm() {
        // 2 FMs on one port: f alternates 0, 1
        let mut chans = ChannelSet::new();
        let i0 = chans.alloc(16);
        let o0 = chans.alloc(16);
        for v in [1.0f32, 2.0, 3.0, 4.0] {
            chans.push(i0, v);
        }
        chans.commit_all();
        let mut core = ScaleShiftCore::<f32>::new(
            "scaleshift",
            vec![i0],
            vec![o0],
            vec![2.0, -1.0],
            vec![0.5, 1.0],
        );
        drive(&mut core, &mut chans, 8);
        assert_eq!(drain(&mut chans, o0), vec![2.5, -1.0, 6.5, -3.0]);
        assert_eq!(core.initiations(), 4);
    }

    #[test]
    fn actor_worker_and_layer_agree_bit_for_bit() {
        let shape = Shape3::new(2, 3, 2);
        let l = ScaleShift::new(shape, vec![1.7, -0.3], vec![0.11, 2.9]);
        let x = Tensor3::from_fn(shape, |y, xx, c| ((y * 3 + xx) as f32) * 0.37 + c as f32);
        let expect = l.forward(&x);

        let mut worker = ScaleShiftWorker {
            scale: l.scale().to_vec(),
            shift: l.shift().to_vec(),
        };
        let mut out = Tensor3::zeros(shape);
        worker.apply_into(&x, &mut out);
        assert_eq!(out.as_slice(), expect.as_slice());

        let mut chans = ChannelSet::new();
        let i0 = chans.alloc(32);
        let o0 = chans.alloc(32);
        for &v in x.as_slice() {
            chans.push(i0, v);
        }
        chans.commit_all();
        let mut core = ScaleShiftCore::<f32>::new(
            "scaleshift",
            vec![i0],
            vec![o0],
            l.scale().to_vec(),
            l.shift().to_vec(),
        );
        drive(&mut core, &mut chans, 20);
        assert_eq!(drain(&mut chans, o0).as_slice(), expect.as_slice());
    }

    #[test]
    fn plan_carries_the_eq4_ii_and_roms() {
        let m = ScaleShiftModel;
        let layer = Layer::ScaleShift(ScaleShift::identity(Shape3::new(4, 4, 6)));
        assert_eq!(m.feature_maps(&layer), (6, 6));
        let plan = m.plan(
            &layer,
            LayerPorts {
                in_ports: 2,
                out_ports: 3,
            },
            &DesignConfig::default(),
        );
        assert_eq!(plan.params.kind, CoreKind::ScaleShift);
        assert_eq!(plan.params.ii, 3); // max(6/2, 6/3)
        assert_eq!(plan.params.weights, 12); // scale + shift ROMs
        assert_eq!(plan.in_values_per_image, 96);
        assert_eq!(plan.positions, 16);
        assert_eq!(m.estimate_interval_probe(&plan), 48);
    }

    impl ScaleShiftModel {
        fn estimate_interval_probe(&self, plan: &CorePlan) -> u64 {
            let core = CoreInfo {
                name: "scaleshift1".into(),
                params: plan.params,
                layer_index: Some(0),
                in_values_per_image: plan.in_values_per_image,
                positions: plan.positions,
            };
            self.estimate_interval(&core, &DesignConfig::default())
        }
    }

    #[test]
    fn two_port_streaming_preserves_order() {
        // 2 FMs on 2 ports in, 1 port out: widen while transforming
        let mut chans = ChannelSet::new();
        let ins: Vec<_> = (0..2).map(|_| chans.alloc(8)).collect();
        let o0 = chans.alloc(8);
        chans.push(ins[0], 1.0); // f0
        chans.push(ins[1], 2.0); // f1
        chans.push(ins[0], 3.0); // f0
        chans.push(ins[1], 4.0); // f1
        chans.commit_all();
        let mut core = ScaleShiftCore::<f32>::new(
            "scaleshift",
            ins,
            vec![o0],
            vec![10.0, 100.0],
            vec![0.0, 0.0],
        );
        drive(&mut core, &mut chans, 8);
        assert_eq!(drain(&mut chans, o0), vec![10.0, 200.0, 30.0, 400.0]);
    }
}
