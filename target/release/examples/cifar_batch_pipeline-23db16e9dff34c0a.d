/root/repo/target/release/examples/cifar_batch_pipeline-23db16e9dff34c0a.d: examples/cifar_batch_pipeline.rs

/root/repo/target/release/examples/cifar_batch_pipeline-23db16e9dff34c0a: examples/cifar_batch_pipeline.rs

examples/cifar_batch_pipeline.rs:
