/root/repo/target/release/deps/table1-cd9b18b36c476dfd.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-cd9b18b36c476dfd: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
