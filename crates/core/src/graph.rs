//! Network design construction (§IV-C).
//!
//! "The design of an entire network starts from the choice of the
//! parameters to set for each module" — here, a [`PortConfig`] assigning
//! `IN_PORTS`/`OUT_PORTS` to every paper layer (conv, pool, linear) of a
//! trained [`dfcnn_nn::Network`]. [`NetworkDesign::new`] validates the
//! choice, computes every core's Eq. 4 initiation interval, sizes the
//! FIFOs, inserts demux/widen adapters at port-width mismatches, and
//! records the [`dfcnn_fpga::CoreParams`] that drive the resource model.
//!
//! From one design you can then:
//! - [`NetworkDesign::instantiate`] a cycle simulator for a batch,
//! - estimate per-stage intervals analytically,
//! - total the resource usage (Table I),
//! - render a Fig. 4/5-style block diagram,
//! - run the hardware-order forward pass on the host
//!   ([`NetworkDesign::hw_forward`]).
//!
//! Two presets reproduce the paper's designs: test case 1 with the first
//! conv and pool fully parallelised (Fig. 4) and test case 2 entirely
//! single-port (Fig. 5). The final LogSoftMax operator runs on the host
//! by default (the hardware designs of Figs. 4/5 end at the last linear
//! layer), so the sink collects the classifier scores; setting
//! [`DesignConfig::fabric_normalization`] appends the on-fabric
//! normalisation core instead and the sink collects log-probabilities.
//!
//! All per-layer-kind knowledge (validation, Eq. 4 II, actors, compute,
//! labels) comes from the [`crate::model`] registry — this module only
//! walks the chain.

use crate::endpoints::{Sink, SinkState, Source};
use crate::model;
use crate::sim::{Actor, Simulator};
use crate::stream::ChannelSet;
use dfcnn_fpga::dma::{DmaChannel, DmaConfig};
use dfcnn_fpga::resources::{CoreParams, CostModel, Resources};
use dfcnn_hls::latency::OpLatency;
use dfcnn_nn::layer::Layer;
use dfcnn_nn::topology::{GraphOp, GraphSpec, JoinKind};
use dfcnn_nn::Network;
use dfcnn_tensor::{NumericSpec, Shape3, Tensor3};
use serde::{Deserialize, Serialize};

/// Port counts of one paper layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerPorts {
    /// `IN_PORTS`.
    pub in_ports: usize,
    /// `OUT_PORTS`.
    pub out_ports: usize,
}

impl LayerPorts {
    /// Single-input-port / single-output-port.
    pub const SINGLE: LayerPorts = LayerPorts {
        in_ports: 1,
        out_ports: 1,
    };
}

/// Port assignment for every paper layer (conv/pool/linear, in network
/// order; flatten and logsoftmax carry no ports).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortConfig {
    /// One entry per paper layer.
    pub layers: Vec<LayerPorts>,
}

impl PortConfig {
    /// All layers single-port.
    pub fn single_port(paper_layers: usize) -> Self {
        PortConfig {
            layers: vec![LayerPorts::SINGLE; paper_layers],
        }
    }

    /// The paper's Test Case 1 design (Fig. 4): conv1 and pool1 fully
    /// parallel (6 ports), conv2 reading 6 ports and emitting 1, FC
    /// single-port.
    pub fn paper_test_case_1() -> Self {
        PortConfig {
            layers: vec![
                LayerPorts {
                    in_ports: 1,
                    out_ports: 6,
                },
                LayerPorts {
                    in_ports: 6,
                    out_ports: 6,
                },
                LayerPorts {
                    in_ports: 6,
                    out_ports: 1,
                },
                LayerPorts::SINGLE,
            ],
        }
    }

    /// The paper's Test Case 2 design (Fig. 5): every layer
    /// single-input-port/single-output-port.
    pub fn paper_test_case_2() -> Self {
        Self::single_port(6)
    }
}

/// Global design knobs.
#[derive(Clone, Copy, Debug)]
pub struct DesignConfig {
    /// Operator latency table (f32 Virtex-7 by default).
    pub ops: OpLatency,
    /// Interleaved accumulator banks in FC cores (paper: ≥ add latency).
    pub fc_banks: usize,
    /// Depth of the inter-layer decoupling FIFOs.
    pub inter_fifo_depth: usize,
    /// DMA configuration for source and sink.
    pub dma: DmaConfig,
    /// Core clock (100 MHz on the VC707).
    pub clock_hz: u64,
    /// Run the final normalisation (LogSoftMax) on the fabric instead of
    /// the host. Off by default: the paper's designs end at the last
    /// linear layer and normalise on the CPU.
    pub fabric_normalization: bool,
    /// Fault injection: override every windowed core's per-port line
    /// buffer to this many values instead of the SST full-buffering bound.
    /// A value below the bound is a statically-provable deadlock — the
    /// [`crate::check`] verifier rejects it and the cycle simulator
    /// confirms by stalling out. `None` (the default) keeps the bound.
    pub line_buffer_cap: Option<usize>,
    /// Fault injection: skip the demux/widen adapters the builder would
    /// insert at port-width mismatches, leaving the boundary rates
    /// unreconciled. The [`crate::check`] verifier flags the mismatch as a
    /// rate-conservation error; the cycle simulator confirms by
    /// deadlocking on the unfed (or undrained) ports.
    pub omit_adapters: bool,
    /// Fault injection: clamp every fork out-edge FIFO to at most this
    /// depth *after* [`GraphBuilder::finish`]'s reconvergence auto-sizing.
    /// An undersized skip path is a statically-provable deadlock — the
    /// [`crate::check`] verifier rejects it (reconvergence-buffering) and
    /// the cycle simulator confirms by stalling out. `None` (the default)
    /// keeps the auto-sized depths.
    pub skip_fifo_cap: Option<usize>,
    /// The element type every core's datapath executes in: `f32` (the
    /// default — golden traces and the paper's Virtex-7 designs) or one of
    /// the supported fixed-point formats ([`NumericSpec::is_supported`]).
    /// All three engines quantise at each core's stream boundary, so they
    /// stay bit-identical to each other in any supported spec.
    pub numeric: NumericSpec,
    /// Interval the source DMA's input values are promised to lie in.
    /// The static value-range analyzer ([`crate::range`]) propagates this
    /// through every core; the default `(-1, 1)` covers normalised image
    /// pixels (the datasets feed `[0, 1]`, a subset). Widen it if a design
    /// ingests un-normalised data, or tighten it to prove more headroom.
    pub input_range: (f32, f32),
}

impl Default for DesignConfig {
    fn default() -> Self {
        let ops = OpLatency::f32_virtex7();
        DesignConfig {
            ops,
            fc_banks: ops.add as usize,
            inter_fifo_depth: 8,
            dma: DmaConfig::paper(),
            clock_hz: 100_000_000,
            fabric_normalization: false,
            line_buffer_cap: None,
            omit_adapters: false,
            skip_fifo_cap: None,
            numeric: NumericSpec::F32,
            input_range: (-1.0, 1.0),
        }
    }
}

/// One generated core in the design (layer core or adapter).
#[derive(Clone, Debug)]
pub struct CoreInfo {
    /// Display name ("conv1", "pool1", "demux1", …).
    pub name: String,
    /// Cost-model parameters.
    pub params: CoreParams,
    /// Index into the network's layer list (`None` for adapters).
    pub layer_index: Option<usize>,
    /// Values entering the core per image (across all input ports).
    pub in_values_per_image: u64,
    /// Window positions per image (0 for FC cores and adapters).
    pub positions: u64,
}

/// A node of the core graph: the DMA source, one generated core (by index
/// into [`NetworkDesign::cores`]), or the DMA sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRef {
    /// The DMA source feeding the first core(s).
    Source,
    /// Core `i` of [`NetworkDesign::cores`].
    Core(usize),
    /// The DMA sink collecting the classifier scores.
    Sink,
}

/// One directed stream bundle of the core graph. A chain design has the
/// obvious linear edge list; fork/join designs have fan-out edges leaving
/// a fork core and two operand edges entering an eltwise-add join.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeInfo {
    /// Producer node.
    pub from: NodeRef,
    /// Consumer node.
    pub to: NodeRef,
    /// Parallel FIFO channels in the bundle (the boundary's port count).
    pub ports: usize,
    /// Values per image crossing the bundle (across all its ports).
    pub values_per_image: u64,
    /// Per-channel FIFO depth. Chain edges use
    /// [`DesignConfig::inter_fifo_depth`]; fork out-edges may be deepened
    /// by the reconvergence auto-sizing (or clamped by
    /// [`DesignConfig::skip_fifo_cap`]).
    pub depth: usize,
}

/// Where a host pipeline stage's input operand comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageInput {
    /// The batch image itself (only the first stage reads it).
    Image,
    /// The output of an earlier stage, by stage index.
    Stage(usize),
}

/// One node of a graph design's *stage* topology: the image-level compute
/// order the host engines follow. Forks and adapters are port plumbing
/// and have no stage — a branch's first stage taps the fork's producer
/// directly.
#[derive(Clone, Debug)]
pub struct StageNode {
    /// The core computing this stage, or `None` for the flatten reshape.
    pub core: Option<usize>,
    /// Stage name (`conv1`, `flatten`, `add3`, …).
    pub name: String,
    /// The stage's input operands, in core input-edge order.
    pub inputs: Vec<StageInput>,
}

/// A fully-validated accelerator design for one trained network.
#[derive(Clone, Debug)]
pub struct NetworkDesign {
    network: Network,
    ports: PortConfig,
    config: DesignConfig,
    cores: Vec<CoreInfo>,
    classes: usize,
    edges: Vec<EdgeInfo>,
    /// `Some` for fork/join graph designs (built by [`GraphBuilder`]);
    /// `None` for chains, which derive their stage order from the layer
    /// list.
    stage_topo: Option<Vec<StageNode>>,
}

impl NetworkDesign {
    /// Validate a port configuration against a trained network and derive
    /// every core's parameters.
    ///
    /// # Errors
    /// A human-readable message if the configuration is inconsistent
    /// (wrong layer count, ports not dividing FM counts, multi-port FC).
    pub fn new(network: &Network, ports: PortConfig, config: DesignConfig) -> Result<Self, String> {
        if !config.numeric.is_supported() {
            return Err(format!(
                "unsupported numeric spec {:?}: kernels are monomorphised for {}",
                config.numeric,
                NumericSpec::supported_labels().join(", ")
            ));
        }
        let paper_layers: Vec<(usize, &Layer)> = network
            .layers()
            .iter()
            .enumerate()
            .filter(|(_, l)| model::paper_layer_model(l).is_some())
            .collect();
        if paper_layers.len() != ports.layers.len() {
            return Err(format!(
                "port config has {} entries but the network has {} paper layers",
                ports.layers.len(),
                paper_layers.len()
            ));
        }
        let mut cores: Vec<CoreInfo> = Vec::new();
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        let mut prev_out_ports: Option<usize> = None;
        let mut classes = 0;
        let push_core = |cores: &mut Vec<CoreInfo>,
                         prev_out_ports: &mut Option<usize>,
                         m: &dyn model::CoreModel,
                         name: String,
                         layer_index: usize,
                         layer: &Layer,
                         lp: LayerPorts|
         -> Result<(), String> {
            m.validate(&name, layer, lp)?;
            let plan = m.plan(layer, lp, &config);
            // adapter between the previous layer's output and this input
            // (unless fault injection asked for the raw mismatch)
            if let Some(prev) = *prev_out_ports {
                if !config.omit_adapters {
                    if let Some(adapter) = model::adapter::plan_between(
                        prev,
                        lp.in_ports,
                        plan.params.in_fm,
                        plan.in_values_per_image,
                        cores.len(),
                    ) {
                        cores.push(adapter);
                    }
                }
            }
            cores.push(CoreInfo {
                name,
                params: plan.params,
                layer_index: Some(layer_index),
                in_values_per_image: plan.in_values_per_image,
                positions: plan.positions,
            });
            *prev_out_ports = Some(lp.out_ports);
            Ok(())
        };
        for ((layer_index, layer), lp) in paper_layers.iter().zip(ports.layers.iter()) {
            let m = model::paper_layer_model(layer).expect("filtered to paper layers");
            let name = model::next_name(&mut counts, m.label());
            if let Some(k) = m.classifier_outputs(layer) {
                classes = k;
            }
            push_core(
                &mut cores,
                &mut prev_out_ports,
                m,
                name,
                *layer_index,
                layer,
                *lp,
            )?;
        }
        if config.fabric_normalization {
            if let Some((layer_index, layer)) = network
                .layers()
                .iter()
                .enumerate()
                .find(|(_, l)| model::is_normalization(l))
            {
                let m = model::normalization_model();
                let name = model::next_name(&mut counts, m.label());
                push_core(
                    &mut cores,
                    &mut prev_out_ports,
                    m,
                    name,
                    layer_index,
                    layer,
                    LayerPorts::SINGLE,
                )?;
            }
        }
        let edges = chain_edges(&cores, classes, config.inter_fifo_depth);
        Ok(NetworkDesign {
            network: network.clone(),
            ports,
            config,
            cores,
            classes,
            edges,
            stage_topo: None,
        })
    }

    /// The trained network this design implements.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The port configuration.
    pub fn ports(&self) -> &PortConfig {
        &self.ports
    }

    /// The design knobs.
    pub fn config(&self) -> &DesignConfig {
        &self.config
    }

    /// Every generated core (layer cores and adapters, pipeline order).
    pub fn cores(&self) -> &[CoreInfo] {
        &self.cores
    }

    /// Mutable core list, for in-crate tests that tamper with derived
    /// parameters (e.g. seeding an Eq. 4 II violation for the static
    /// checker to catch).
    #[cfg(test)]
    pub(crate) fn cores_mut(&mut self) -> &mut Vec<CoreInfo> {
        &mut self.cores
    }

    /// Number of classifier outputs the sink collects per image.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The core graph's edges (source, core-to-core and sink bundles, in
    /// creation order). A chain design's edges are the obvious linear
    /// list.
    pub fn edges(&self) -> &[EdgeInfo] {
        &self.edges
    }

    /// The stage topology of a fork/join graph design, or `None` for
    /// chains (whose stage order is the layer list).
    pub fn stage_topo(&self) -> Option<&[StageNode]> {
        self.stage_topo.as_deref()
    }

    /// Whether this design is a fork/join graph (built by
    /// [`GraphBuilder`]) rather than a linear chain.
    pub fn is_graph(&self) -> bool {
        self.stage_topo.is_some()
    }

    /// Number of edges entering core `idx`.
    pub fn core_in_degree(&self, idx: usize) -> usize {
        self.edges
            .iter()
            .filter(|e| e.to == NodeRef::Core(idx))
            .count()
    }

    /// Number of edges leaving core `idx` (including a sink edge).
    pub fn core_out_degree(&self, idx: usize) -> usize {
        self.edges
            .iter()
            .filter(|e| e.from == NodeRef::Core(idx))
            .count()
    }

    /// Whether the design normalises (LogSoftMax) on the fabric: opted in
    /// via [`DesignConfig::fabric_normalization`] and the network actually
    /// ends in a normalisation operator.
    pub fn on_fabric_normalization(&self) -> bool {
        self.config.fabric_normalization
            && self.network.layers().iter().any(model::is_normalization)
    }

    /// Whether a host-side normalisation pass still follows the sink (the
    /// paper's default split).
    pub fn host_normalization(&self) -> bool {
        !self.on_fabric_normalization() && self.network.layers().iter().any(model::is_normalization)
    }

    /// The paper's layer count (used for the Fig. 6 convergence claim).
    pub fn paper_depth(&self) -> usize {
        self.ports.layers.len()
    }

    /// Total resource usage including the support platform (Table I).
    pub fn resources(&self, cost: &CostModel) -> Resources {
        self.cores
            .iter()
            .map(|c| cost.core(&c.params))
            .sum::<Resources>()
            + cost.platform_base()
            + cost.dma_engine()
    }

    /// Analytical per-core stage interval (cycles per image at steady
    /// state): the max of the input-serialisation, initiation and
    /// output-serialisation times. The slowest stage bounds the pipeline —
    /// "the pipeline interval is its slowest stage time" (§IV-C).
    pub fn estimate_stage_intervals(&self) -> Vec<(String, u64)> {
        self.cores
            .iter()
            .map(|c| {
                let interval = model::model_for(c.params.kind).estimate_interval(c, &self.config);
                (c.name.clone(), interval)
            })
            .collect()
    }

    /// The estimated bottleneck stage `(name, cycles per image)`.
    pub fn estimated_bottleneck(&self) -> (String, u64) {
        // include the source: the DMA needs input-volume / rate cycles
        let input_len = self.network.input_shape().len() as u64;
        let src_cycles = (input_len as f64 / self.config.dma.beats_per_cycle()).ceil() as u64
            + self.config.dma.setup_cycles;
        let mut best = ("dma-source".to_string(), src_cycles);
        for (name, cyc) in self.estimate_stage_intervals() {
            if cyc > best.1 {
                best = (name, cyc);
            }
        }
        best
    }

    /// Fig. 4/5-style block diagram.
    pub fn render_block_diagram(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("input {} -> ", self.network.input_shape()));
        for c in &self.cores {
            out.push_str(&model::model_for(c.params.kind).block_label(c));
            out.push_str(" -> ");
        }
        out.push_str(&format!(
            "{} classes (LogSoftMax on {})",
            self.classes,
            if self.on_fabric_normalization() {
                "fabric"
            } else {
                "host"
            }
        ));
        out
    }

    /// Run the hardware-order forward pass on the host (no timing):
    /// exactly what the accelerator computes for one image, ending at the
    /// values the sink collects (classifier scores, or log-probabilities
    /// when normalisation is on the fabric). Works for chains and
    /// fork/join graphs alike by walking the host pipeline's stage
    /// topology.
    pub fn hw_forward(&self, input: &Tensor3<f32>) -> Tensor3<f32> {
        let stages = model::host_pipeline(self);
        let mut outs: Vec<Tensor3<f32>> = Vec::with_capacity(stages.len());
        for hs in &stages {
            let ins: Vec<&Tensor3<f32>> = hs
                .inputs
                .iter()
                .map(|si| match si {
                    StageInput::Image => input,
                    StageInput::Stage(j) => &outs[*j],
                })
                .collect();
            let mut out = Tensor3::zeros(hs.spec.out_shape);
            hs.spec.make_worker().apply_multi(&ins, &mut out);
            outs.push(out);
        }
        outs.pop().expect("design has stages")
    }

    /// Build the cycle simulator for a batch of images.
    pub fn instantiate(&self, images: &[Tensor3<f32>]) -> Simulator {
        self.instantiate_with_links(images, &[])
    }

    /// Build the cycle simulator with inter-FPGA link actors inserted
    /// after the named core indices (used by [`crate::multi`] to simulate
    /// a partitioned chain end to end). `links` pairs a core index with
    /// the link's `(words_per_cycle, latency_cycles)` timing.
    pub fn instantiate_with_links(
        &self,
        images: &[Tensor3<f32>],
        links: &[(usize, (f64, u64))],
    ) -> Simulator {
        assert!(!images.is_empty(), "empty batch");
        assert_eq!(
            images[0].shape(),
            self.network.input_shape(),
            "image shape does not match the network input"
        );
        let depth = self.config.inter_fifo_depth;
        let mut chans = ChannelSet::new();
        let mut actors: Vec<Box<dyn Actor>> = Vec::new();

        // one channel bundle per edge, allocated producer-side
        let mut edge_chs: Vec<Option<Vec<crate::stream::ChannelId>>> = vec![None; self.edges.len()];

        // the source's out-edges feed the first core(s)
        let mut src_chs = Vec::new();
        for (ei, e) in self.edges.iter().enumerate() {
            if e.from == NodeRef::Source {
                let bundle: Vec<_> = (0..e.ports).map(|_| chans.alloc(e.depth)).collect();
                src_chs.extend(bundle.iter().copied());
                edge_chs[ei] = Some(bundle);
            }
        }
        actors.push(Box::new(Source::new(
            images,
            src_chs,
            DmaChannel::new(self.config.dma),
        )));

        for (core_idx, c) in self.cores.iter().enumerate() {
            let p = &c.params;
            let model = model::model_for(p.kind);
            // gather input channels from this core's in-edges, in edge order
            let mut in_chs: Vec<_> = self
                .edges
                .iter()
                .enumerate()
                .filter(|(_, e)| e.to == NodeRef::Core(core_idx))
                .flat_map(|(ei, _)| edge_chs[ei].clone().expect("producer allocated first"))
                .collect();
            // Adapters normally guarantee the producer's port count equals
            // the consumer's; with omit_adapters the boundary is left
            // mismatched, and the hardware analogue is wires tied off: the
            // consumer's surplus ports are fed by never-written channels
            // (it starves) and a producer's surplus ports drive undrained
            // channels (it backpressures). Either way the chain deadlocks,
            // which is exactly what the static checker predicts.
            let want = model.input_channel_count(c);
            match in_chs.len().cmp(&want) {
                std::cmp::Ordering::Less => {
                    while in_chs.len() < want {
                        in_chs.push(chans.alloc(depth));
                    }
                }
                std::cmp::Ordering::Greater => in_chs.truncate(want),
                std::cmp::Ordering::Equal => {}
            }
            // allocate this core's out-edges (sink edges included)
            let mut out_chs = Vec::new();
            let mut out_edges = Vec::new();
            for (ei, e) in self.edges.iter().enumerate() {
                if e.from == NodeRef::Core(core_idx) {
                    let bundle: Vec<_> = (0..e.ports).map(|_| chans.alloc(e.depth)).collect();
                    out_chs.extend(bundle.iter().copied());
                    edge_chs[ei] = Some(bundle);
                    out_edges.push(ei);
                }
            }
            actors.push(model.make_actor(self, c, in_chs, out_chs.clone()));

            // optional inter-FPGA link after this core
            if let Some(&(_, (wpc, lat))) = links.iter().find(|(i, _)| *i == core_idx) {
                let link_out: Vec<_> = out_chs.iter().map(|_| chans.alloc(depth)).collect();
                actors.push(Box::new(crate::multi::LinkActor::new(
                    format!("link-after-{}", c.name),
                    out_chs,
                    link_out.clone(),
                    wpc,
                    lat,
                )));
                // consumers read the link's output side of each edge
                let mut off = 0;
                for ei in out_edges {
                    let n = self.edges[ei].ports;
                    edge_chs[ei] = Some(link_out[off..off + n].to_vec());
                    off += n;
                }
            }
        }

        let sink_chs: Vec<_> = self
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.to == NodeRef::Sink)
            .flat_map(|(ei, _)| edge_chs[ei].clone().expect("producer allocated first"))
            .collect();
        let state = std::rc::Rc::new(std::cell::RefCell::new(SinkState::default()));
        actors.push(Box::new(Sink::new(
            sink_chs,
            self.classes,
            state.clone(),
            DmaChannel::new(self.config.dma),
        )));
        Simulator::new(actors, chans, images.len(), state)
    }
}

/// The linear edge list of a chain design: source → cores in order → sink,
/// every FIFO at `depth`.
fn chain_edges(cores: &[CoreInfo], classes: usize, depth: usize) -> Vec<EdgeInfo> {
    let Some(first) = cores.first() else {
        return Vec::new();
    };
    let mut edges = vec![EdgeInfo {
        from: NodeRef::Source,
        to: NodeRef::Core(0),
        ports: first.params.in_ports,
        values_per_image: first.in_values_per_image,
        depth,
    }];
    for i in 1..cores.len() {
        edges.push(EdgeInfo {
            from: NodeRef::Core(i - 1),
            to: NodeRef::Core(i),
            ports: cores[i - 1].params.out_ports,
            values_per_image: cores[i].in_values_per_image,
            depth,
        });
    }
    edges.push(EdgeInfo {
        from: NodeRef::Core(cores.len() - 1),
        to: NodeRef::Sink,
        ports: cores.last().unwrap().params.out_ports,
        values_per_image: classes as u64,
        depth,
    });
    edges
}

/// A live stream endpoint during graph construction: the node producing
/// it, the volume shape and port count it carries, and the host stage
/// computing it. Deliberately *not* `Clone` — every stream must be
/// consumed exactly once (use [`GraphBuilder::fork`] to duplicate one).
#[derive(Debug)]
pub struct Tap {
    node: NodeRef,
    shape: Shape3,
    ports: usize,
    stage: StageInput,
}

impl Tap {
    /// The volume shape this stream carries per image.
    pub fn shape(&self) -> Shape3 {
        self.shape
    }

    /// The stream's port count.
    pub fn ports(&self) -> usize {
        self.ports
    }
}

/// Incremental construction of a fork/join [`NetworkDesign`].
///
/// ```text
/// let (mut g, x) = GraphBuilder::new(input_shape, config);
/// let x = g.layer(x, conv, lp)?;          // trunk
/// let [a, b] = g.fork(x, 2)?...;          // tee
/// let a = g.layer(a, conv2, lp2)?;        // transform path
/// let a = g.layer(a, scaleshift, lp3)?;   //   …with frozen batchnorm
/// let x = g.add(a, b)?;                   // re-converge (b = identity skip)
/// let x = g.layer(x, flatten, …)?;
/// let x = g.layer(x, linear, lp4)?;
/// let design = g.finish(x)?;
/// ```
///
/// [`GraphBuilder::finish`] auto-sizes every fork out-edge FIFO so the
/// fastest reconvergent path can buffer the slowest path's holdback (the
/// line-buffer fill of windowed cores) — see the static checker's
/// reconvergence-buffering rule for the latency math.
pub struct GraphBuilder {
    input: Shape3,
    config: DesignConfig,
    layers: Vec<Layer>,
    port_entries: Vec<LayerPorts>,
    cores: Vec<CoreInfo>,
    edges: Vec<EdgeInfo>,
    topo: Vec<StageNode>,
    counts: Vec<(&'static str, usize)>,
}

impl GraphBuilder {
    /// Start a graph over `input`-shaped images; the returned [`Tap`] is
    /// the DMA source stream.
    pub fn new(input: Shape3, config: DesignConfig) -> (Self, Tap) {
        let builder = GraphBuilder {
            input,
            config,
            layers: Vec::new(),
            port_entries: Vec::new(),
            cores: Vec::new(),
            edges: Vec::new(),
            topo: Vec::new(),
            counts: Vec::new(),
        };
        let tap = Tap {
            node: NodeRef::Source,
            shape: input,
            ports: 0, // the first core decides; the source adapts
            stage: StageInput::Image,
        };
        (builder, tap)
    }

    fn edge(&mut self, from: NodeRef, to: NodeRef, ports: usize, values: u64) {
        self.edges.push(EdgeInfo {
            from,
            to,
            ports,
            values_per_image: values,
            depth: self.config.inter_fifo_depth,
        });
    }

    /// Apply a network layer to a stream. Paper layers (conv, pool,
    /// linear, scale-shift) instantiate a core — with a demux/widen
    /// adapter at a port mismatch, exactly like the chain builder —
    /// flatten is a core-less reshape stage, and the normalisation
    /// operator is rejected (graph designs keep LogSoftMax on the host).
    pub fn layer(
        &mut self,
        tap: Tap,
        layer: impl Into<Layer>,
        lp: LayerPorts,
    ) -> Result<Tap, String> {
        let layer: Layer = layer.into();
        if model::is_reshape(&layer) {
            if layer.input_shape() != tap.shape {
                return Err(format!(
                    "flatten expects {} but the stream carries {}",
                    layer.input_shape(),
                    tap.shape
                ));
            }
            let out_shape = layer.output_shape();
            self.layers.push(layer);
            let t_idx = self.topo.len();
            self.topo.push(StageNode {
                core: None,
                name: "flatten".to_string(),
                inputs: vec![tap.stage],
            });
            return Ok(Tap {
                node: tap.node,
                shape: out_shape,
                ports: tap.ports,
                stage: StageInput::Stage(t_idx),
            });
        }
        let Some(m) = model::paper_layer_model(&layer) else {
            return Err(format!(
                "graph designs keep the {} operator on the host",
                layer.kind_name()
            ));
        };
        if layer.input_shape() != tap.shape {
            return Err(format!(
                "{} expects {} but the stream carries {}",
                layer.kind_name(),
                layer.input_shape(),
                tap.shape
            ));
        }
        let name = model::next_name(&mut self.counts, m.label());
        m.validate(&name, &layer, lp)?;
        let plan = m.plan(&layer, lp, &self.config);

        // adapter at a port mismatch (the source always adapts itself)
        let mut from = tap.node;
        let mut from_ports = tap.ports;
        if from != NodeRef::Source && from_ports != lp.in_ports {
            let a_idx = self.cores.len();
            let adapter = model::adapter::plan_between(
                from_ports,
                lp.in_ports,
                plan.params.in_fm,
                plan.in_values_per_image,
                a_idx,
            )
            .expect("ports differ");
            self.edge(
                from,
                NodeRef::Core(a_idx),
                from_ports,
                plan.in_values_per_image,
            );
            self.cores.push(adapter);
            from = NodeRef::Core(a_idx);
            from_ports = lp.in_ports;
        }
        let _ = from_ports;

        let out_shape = layer.output_shape();
        let layer_index = self.layers.len();
        self.layers.push(layer);
        let core_idx = self.cores.len();
        self.edge(
            from,
            NodeRef::Core(core_idx),
            lp.in_ports,
            plan.in_values_per_image,
        );
        self.cores.push(CoreInfo {
            name: name.clone(),
            params: plan.params,
            layer_index: Some(layer_index),
            in_values_per_image: plan.in_values_per_image,
            positions: plan.positions,
        });
        self.port_entries.push(lp);
        let t_idx = self.topo.len();
        self.topo.push(StageNode {
            core: Some(core_idx),
            name,
            inputs: vec![tap.stage],
        });
        Ok(Tap {
            node: NodeRef::Core(core_idx),
            shape: out_shape,
            ports: lp.out_ports,
            stage: StageInput::Stage(t_idx),
        })
    }

    /// Tee a stream into `n ≥ 2` identical branches via a fork core.
    pub fn fork(&mut self, tap: Tap, n: usize) -> Result<Vec<Tap>, String> {
        if n < 2 {
            return Err("a fork needs at least two branches".to_string());
        }
        if tap.node == NodeRef::Source {
            return Err("the DMA source stream cannot be forked".to_string());
        }
        let fm = tap.shape.c;
        if !fm.is_multiple_of(tap.ports) {
            return Err(format!(
                "fork ports {} do not divide the stream's {} FMs",
                tap.ports, fm
            ));
        }
        let idx = self.cores.len();
        let values = tap.shape.len() as u64;
        let info = model::fork::plan_fork(fm, tap.ports, values, idx);
        self.edge(tap.node, NodeRef::Core(idx), tap.ports, values);
        self.cores.push(info);
        Ok((0..n)
            .map(|_| Tap {
                node: NodeRef::Core(idx),
                shape: tap.shape,
                ports: tap.ports,
                stage: tap.stage, // the tee has no stage: branches share it
            })
            .collect())
    }

    /// Join two streams with an element-wise add core (`out = a + b`).
    pub fn add(&mut self, a: Tap, b: Tap) -> Result<Tap, String> {
        if a.node == NodeRef::Source || b.node == NodeRef::Source {
            return Err("the DMA source stream cannot feed a join".to_string());
        }
        if a.shape != b.shape {
            return Err(format!(
                "eltwise-add operands must share a shape ({} vs {})",
                a.shape, b.shape
            ));
        }
        if a.ports != b.ports {
            return Err(format!(
                "eltwise-add operands must share a port count ({} vs {})",
                a.ports, b.ports
            ));
        }
        let idx = self.cores.len();
        let info = model::eltwise::plan_add(a.shape, a.ports, idx);
        let name = info.name.clone();
        let values = a.shape.len() as u64;
        self.edge(a.node, NodeRef::Core(idx), a.ports, values);
        self.edge(b.node, NodeRef::Core(idx), b.ports, values);
        self.cores.push(info);
        let t_idx = self.topo.len();
        self.topo.push(StageNode {
            core: Some(idx),
            name,
            inputs: vec![a.stage, b.stage],
        });
        Ok(Tap {
            node: NodeRef::Core(idx),
            shape: a.shape,
            ports: a.ports,
            stage: StageInput::Stage(t_idx),
        })
    }

    /// Join two streams with a concat core appending `b`'s feature maps
    /// after `a`'s (Inception-style): the output carries
    /// `a.c + b.c` FMs per pixel. The operands must share the pixel grid
    /// and port count, and the shared port count must divide *both* FM
    /// counts so the summed FM sequence keeps the round-robin port
    /// interleave.
    pub fn concat(&mut self, a: Tap, b: Tap) -> Result<Tap, String> {
        if a.node == NodeRef::Source || b.node == NodeRef::Source {
            return Err("the DMA source stream cannot feed a join".to_string());
        }
        if (a.shape.h, a.shape.w) != (b.shape.h, b.shape.w) {
            return Err(format!(
                "concat operands must share the pixel grid ({} vs {})",
                a.shape, b.shape
            ));
        }
        if a.ports != b.ports {
            return Err(format!(
                "concat operands must share a port count ({} vs {})",
                a.ports, b.ports
            ));
        }
        for (which, c) in [("first", a.shape.c), ("second", b.shape.c)] {
            if !c.is_multiple_of(a.ports) {
                return Err(format!(
                    "concat ports {} do not divide the {which} operand's {c} FMs",
                    a.ports
                ));
            }
        }
        let idx = self.cores.len();
        let info = model::concat::plan_concat(a.shape, b.shape, a.ports, idx);
        let name = info.name.clone();
        // unlike the add join, the operand edges carry different volumes:
        // each operand streams its own FM count per pixel
        self.edge(a.node, NodeRef::Core(idx), a.ports, a.shape.len() as u64);
        self.edge(b.node, NodeRef::Core(idx), b.ports, b.shape.len() as u64);
        self.cores.push(info);
        let t_idx = self.topo.len();
        self.topo.push(StageNode {
            core: Some(idx),
            name,
            inputs: vec![a.stage, b.stage],
        });
        Ok(Tap {
            node: NodeRef::Core(idx),
            shape: Shape3::new(a.shape.h, a.shape.w, a.shape.c + b.shape.c),
            ports: a.ports,
            stage: StageInput::Stage(t_idx),
        })
    }

    /// Terminate the graph at `tap` (the sink collects its full volume as
    /// classifier scores), auto-size reconvergent-path FIFOs, and apply
    /// the [`DesignConfig::skip_fifo_cap`] fault clamp if set.
    pub fn finish(self, tap: Tap) -> Result<NetworkDesign, String> {
        let mut me = self;
        if me.cores.is_empty() || tap.node == NodeRef::Source {
            return Err("a graph design needs at least one core".to_string());
        }
        let classes = tap.shape.len();
        me.edge(tap.node, NodeRef::Sink, tap.ports, classes as u64);
        let mut network = Network::new();
        for l in me.layers {
            network.push_unchecked(l);
        }
        assert_eq!(
            network.input_shape(),
            me.input,
            "the first layer reads the graph input"
        );
        let mut design = NetworkDesign {
            network,
            ports: PortConfig {
                layers: me.port_entries,
            },
            config: me.config,
            cores: me.cores,
            classes,
            edges: me.edges,
            stage_topo: Some(me.topo),
        };
        design.autosize_reconvergence();
        if let Some(cap) = design.config.skip_fifo_cap {
            // a fork is exactly a core with fan-out > 1 — clamp its
            // out-edges (no per-kind dispatch; topology decides)
            let fork_cores: Vec<usize> = (0..design.cores.len())
                .filter(|&i| design.core_out_degree(i) > 1)
                .collect();
            for e in design.edges.iter_mut() {
                if let NodeRef::Core(i) = e.from {
                    if fork_cores.contains(&i) {
                        e.depth = e.depth.min(cap);
                    }
                }
            }
        }
        Ok(design)
    }
}

/// Lower a fork/join [`GraphSpec`] straight to a [`NetworkDesign`] — no
/// hand-written edge wiring. `layers` must come from
/// [`GraphSpec::build_layers`] on the *same spec* (the lowering re-walks
/// the spec's depth-first traversal and consumes the slice in order);
/// passing prebuilt layers lets a design-space sweep draw weights once and
/// re-lower thousands of port candidates. `ports` carries one entry per
/// paper layer in traversal order, exactly like the chain builder.
///
/// [`GraphSpec::build_layers`]: dfcnn_nn::topology::GraphSpec::build_layers
pub fn build_graph_design(
    spec: &GraphSpec,
    layers: &[Layer],
    ports: &PortConfig,
    config: DesignConfig,
) -> Result<NetworkDesign, String> {
    let (mut g, tap) = GraphBuilder::new(spec.input, config);
    let mut cur = LowerCursor {
        layers: layers.iter(),
        ports: ports.layers.iter(),
    };
    let out = lower_ops(&mut g, tap, &spec.ops, &mut cur)?;
    if cur.layers.next().is_some() {
        return Err(format!(
            "layer list longer than the '{}' spec's traversal",
            spec.name
        ));
    }
    if cur.ports.next().is_some() {
        return Err(format!(
            "port config longer than the '{}' spec's {} paper layers",
            spec.name,
            spec.paper_depth()
        ));
    }
    g.finish(out)
}

struct LowerCursor<'a> {
    layers: std::slice::Iter<'a, Layer>,
    ports: std::slice::Iter<'a, LayerPorts>,
}

fn lower_ops(
    g: &mut GraphBuilder,
    tap: Tap,
    ops: &[GraphOp],
    cur: &mut LowerCursor,
) -> Result<Tap, String> {
    let mut tap = tap;
    for op in ops {
        tap = match op {
            GraphOp::Layer(spec) => {
                let layer = cur
                    .layers
                    .next()
                    .ok_or("layer list shorter than the spec's traversal")?
                    .clone();
                let lp = if spec.counts_as_paper_layer() {
                    *cur.ports
                        .next()
                        .ok_or("port config shorter than the spec's paper layers")?
                } else {
                    LayerPorts::SINGLE
                };
                g.layer(tap, layer, lp)?
            }
            GraphOp::Branch { branches, join } => {
                let taps = g.fork(tap, branches.len())?;
                let mut ends = Vec::with_capacity(branches.len());
                for (ops, t) in branches.iter().zip(taps) {
                    // an empty branch is the identity skip: the fork tap
                    // passes straight through to the join
                    ends.push(lower_ops(g, t, ops, cur)?);
                }
                let mut it = ends.into_iter();
                let mut acc = it.next().expect("fork guarantees >= 2 branches");
                for t in it {
                    acc = match join {
                        JoinKind::Add => g.add(acc, t)?,
                        JoinKind::Concat => g.concat(acc, t)?,
                    };
                }
                acc
            }
        };
    }
    Ok(tap)
}

impl NetworkDesign {
    /// Deepen deficient fork out-edges until every reconvergent path pair
    /// satisfies the buffering bound (fixpoint; each round recomputes the
    /// deficits with the new depths).
    fn autosize_reconvergence(&mut self) {
        const SLACK: u64 = 8;
        for _ in 0..16 {
            let deficits = reconvergence_deficits(self);
            if deficits.is_empty() {
                break;
            }
            for d in deficits {
                let e = &mut self.edges[d.first_edge];
                let need = (d.required + SLACK).saturating_sub(d.capacity);
                e.depth += need.div_ceil(e.ports as u64) as usize;
            }
        }
    }
}

/// One violated reconvergence-buffering bound: the path starting at
/// `first_edge` cannot buffer the sibling path's holdback.
#[derive(Clone, Debug)]
pub(crate) struct ReconvergenceDeficit {
    /// The fork core where the paths diverge.
    pub fork: String,
    /// The join core where they re-converge.
    pub join: String,
    /// Edge index of the deficient path's first hop (a fork out-edge).
    pub first_edge: usize,
    /// The deficient path's total buffering capacity, in values.
    pub capacity: u64,
    /// The sibling path's holdback (line-buffer fill), in values.
    pub required: u64,
}

/// Check every fork/join path pair of the design: while the slow path of
/// a reconvergent pair holds back its first output (filling line
/// buffers), the join keeps consuming nothing — so every value the fork
/// pushes down the *other* path in that window must fit in that path's
/// FIFOs and line buffers, or the fork blocks, the slow path starves and
/// the graph deadlocks. Statically: for each ordered pair `(A, B)` of
/// fork→join paths entering the join on different edges,
/// `capacity(A) ≥ holdback(B)` where `capacity` sums FIFO depths × ports
/// plus interior line-buffer capacity, and `holdback` sums the interior
/// cores' SST line-buffer fill.
pub(crate) fn reconvergence_deficits(design: &NetworkDesign) -> Vec<ReconvergenceDeficit> {
    let mut out = Vec::new();
    let n = design.cores.len();
    for f in 0..n {
        if design.core_out_degree(f) < 2 {
            continue;
        }
        for j in 0..n {
            if design.core_in_degree(j) < 2 {
                continue;
            }
            let paths = fork_join_paths(design, f, j);
            for a in &paths {
                for b in &paths {
                    if a.last() == b.last() {
                        continue; // same join edge: same operand, not a pair
                    }
                    let capacity = path_capacity(design, a);
                    let required = path_holdback(design, b);
                    if capacity < required {
                        out.push(ReconvergenceDeficit {
                            fork: design.cores[f].name.clone(),
                            join: design.cores[j].name.clone(),
                            first_edge: a[0],
                            capacity,
                            required,
                        });
                    }
                }
            }
        }
    }
    out
}

/// All simple core-to-core paths from core `from` to core `to`, as edge
/// index lists (capped at 64 paths — graphs here are small).
fn fork_join_paths(design: &NetworkDesign, from: usize, to: usize) -> Vec<Vec<usize>> {
    fn dfs(
        design: &NetworkDesign,
        cur: usize,
        to: usize,
        stack: &mut Vec<usize>,
        paths: &mut Vec<Vec<usize>>,
    ) {
        if paths.len() >= 64 {
            return;
        }
        if cur == to && !stack.is_empty() {
            paths.push(stack.clone());
            return;
        }
        for (ei, e) in design.edges.iter().enumerate() {
            if e.from != NodeRef::Core(cur) {
                continue;
            }
            let NodeRef::Core(next) = e.to else { continue };
            let revisits = stack
                .iter()
                .any(|&pe| design.edges[pe].to == NodeRef::Core(next));
            if revisits {
                continue;
            }
            stack.push(ei);
            dfs(design, next, to, stack, paths);
            stack.pop();
        }
    }
    let mut paths = Vec::new();
    dfs(design, from, to, &mut Vec::new(), &mut paths);
    paths
}

/// Values a path can buffer: FIFO depth × ports of every edge, plus the
/// line-buffer capacity of every interior core.
fn path_capacity(design: &NetworkDesign, path: &[usize]) -> u64 {
    let mut cap: u64 = path
        .iter()
        .map(|&ei| (design.edges[ei].depth * design.edges[ei].ports) as u64)
        .sum();
    for &ei in &path[..path.len() - 1] {
        if let NodeRef::Core(c) = design.edges[ei].to {
            let core = &design.cores[c];
            let profile = model::model_for(core.params.kind).static_profile(design, core);
            if let Some(lb) = profile.line_buffer {
                cap += (lb.capacity_per_port * core.params.in_ports) as u64;
            }
        }
    }
    cap
}

/// Values a path consumes before emitting its first output: the SST
/// line-buffer fill of every interior windowed core.
fn path_holdback(design: &NetworkDesign, path: &[usize]) -> u64 {
    let mut hold = 0u64;
    for &ei in &path[..path.len() - 1] {
        if let NodeRef::Core(c) = design.edges[ei].to {
            let core = &design.cores[c];
            let profile = model::model_for(core.params.kind).static_profile(design, core);
            if let Some(lb) = profile.line_buffer {
                hold += (lb.required_per_port * core.params.in_ports) as u64;
            }
        }
    }
    hold
}

/// Shared in-crate test fixture: an 8×8×2 residual block
/// (conv → fork → { conv → scaleshift | identity } → add → flatten →
/// linear), the canonical fork/join design the checker, simulator and
/// engines are all exercised against.
#[cfg(test)]
pub(crate) mod fixtures {
    use super::*;
    use dfcnn_nn::act::Activation;
    use dfcnn_nn::layer::{Conv2d, Flatten, Linear, ScaleShift};
    use dfcnn_tensor::{ConvGeometry, Tensor1, Tensor4};

    pub(crate) fn residual_graph(config: DesignConfig) -> NetworkDesign {
        let input = Shape3::new(8, 8, 2);
        let geo = ConvGeometry::new(input, 3, 3, 1, 1); // shape-preserving
        let trunk_f = Tensor4::from_fn(2, 3, 3, 2, |k, y, x, c| {
            ((k + 2 * y + x + c) as f32) * 0.05 - 0.1
        });
        let trunk = Conv2d::new(geo, trunk_f, Tensor1::zeros(2), Activation::Identity);
        let branch_f = Tensor4::from_fn(2, 3, 3, 2, |k, y, x, c| {
            ((3 * k + y + x + 2 * c) as f32) * 0.04 - 0.15
        });
        let branch = Conv2d::new(geo, branch_f, Tensor1::zeros(2), Activation::Identity);
        let bn = ScaleShift::new(input, vec![0.9, 1.2], vec![0.05, -0.1]);
        let fc_w = Tensor4::from_fn(4, 1, 1, 128, |j, _, _, i| {
            ((j * 31 + i) % 17) as f32 * 0.02 - 0.16
        });
        let fc = Linear::new(fc_w, Tensor1::zeros(4), Activation::Identity);

        let (mut g, x) = GraphBuilder::new(input, config);
        let x = g.layer(x, trunk, LayerPorts::SINGLE).unwrap();
        let mut taps = g.fork(x, 2).unwrap();
        let skip = taps.pop().unwrap();
        let a = taps.pop().unwrap();
        let a = g.layer(a, branch, LayerPorts::SINGLE).unwrap();
        let a = g.layer(a, bn, LayerPorts::SINGLE).unwrap();
        let x = g.add(a, skip).unwrap();
        let x = g.layer(x, Flatten::new(input), LayerPorts::SINGLE).unwrap();
        let x = g.layer(x, fc, LayerPorts::SINGLE).unwrap();
        g.finish(x).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfcnn_nn::topology::NetworkSpec;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tc1_network() -> Network {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        NetworkSpec::test_case_1().build(&mut rng)
    }

    fn tc2_network() -> Network {
        let mut rng = ChaCha8Rng::seed_from_u64(20);
        NetworkSpec::test_case_2().build(&mut rng)
    }

    #[test]
    fn tc1_design_builds_with_paper_ports() {
        let d = NetworkDesign::new(
            &tc1_network(),
            PortConfig::paper_test_case_1(),
            DesignConfig::default(),
        )
        .unwrap();
        // conv1(II=1), pool1, conv2(II=16), fc1 — plus no adapters
        // (1->6 direct? conv1 out 6 ports -> pool in 6 ports: direct;
        //  pool out 6 -> conv2 in 6: direct; conv2 out 1 -> fc in 1: direct)
        let names: Vec<_> = d.cores().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["conv1", "pool1", "conv2", "fc1"]);
        let convs: Vec<_> = d
            .cores()
            .iter()
            .filter(|c| c.name.starts_with("conv"))
            .collect();
        assert_eq!(convs[0].params.ii, 1, "fully parallel conv1 has II=1");
        assert_eq!(convs[1].params.ii, 16, "conv2 II = max(16/1, 6/6)");
        assert_eq!(d.classes(), 10);
        assert_eq!(d.paper_depth(), 4);
    }

    #[test]
    fn tc2_design_all_single_port() {
        let d = NetworkDesign::new(
            &tc2_network(),
            PortConfig::paper_test_case_2(),
            DesignConfig::default(),
        )
        .unwrap();
        let iis: Vec<_> = d.cores().iter().map(|c| c.params.ii).collect();
        // conv1 II=12, pool1 II=12, conv2 II=36, pool2 II=36, fc(900), fc(72)
        assert_eq!(iis[0], 12);
        assert_eq!(iis[2], 36);
        assert_eq!(d.paper_depth(), 6);
    }

    #[test]
    fn adapter_inserted_on_port_mismatch() {
        // conv1 out 2 ports, pool in 1 port -> widen adapter
        let net = tc1_network();
        let cfg = PortConfig {
            layers: vec![
                LayerPorts {
                    in_ports: 1,
                    out_ports: 2,
                },
                LayerPorts::SINGLE,
                LayerPorts::SINGLE,
                LayerPorts::SINGLE,
            ],
        };
        let d = NetworkDesign::new(&net, cfg, DesignConfig::default()).unwrap();
        assert!(d.cores().iter().any(|c| c.name.starts_with("widen")));
    }

    #[test]
    fn demux_inserted_when_consumer_wider() {
        let net = tc1_network();
        let cfg = PortConfig {
            layers: vec![
                LayerPorts {
                    in_ports: 1,
                    out_ports: 1,
                },
                LayerPorts {
                    in_ports: 6,
                    out_ports: 6,
                },
                LayerPorts {
                    in_ports: 6,
                    out_ports: 1,
                },
                LayerPorts::SINGLE,
            ],
        };
        let d = NetworkDesign::new(&net, cfg, DesignConfig::default()).unwrap();
        assert!(d.cores().iter().any(|c| c.name.starts_with("demux")));
    }

    #[test]
    fn wrong_layer_count_rejected() {
        let err = NetworkDesign::new(
            &tc1_network(),
            PortConfig::single_port(3),
            DesignConfig::default(),
        )
        .unwrap_err();
        assert!(err.contains("3 entries"), "{err}");
    }

    #[test]
    fn multiport_fc_rejected() {
        let mut cfg = PortConfig::single_port(4);
        cfg.layers[3] = LayerPorts {
            in_ports: 1,
            out_ports: 2,
        };
        let err = NetworkDesign::new(&tc1_network(), cfg, DesignConfig::default()).unwrap_err();
        assert!(err.contains("single-input-port"), "{err}");
    }

    #[test]
    fn non_divisor_ports_rejected() {
        let mut cfg = PortConfig::single_port(4);
        cfg.layers[0] = LayerPorts {
            in_ports: 1,
            out_ports: 4, // 6 FMs not divisible by 4
        };
        let err = NetworkDesign::new(&tc1_network(), cfg, DesignConfig::default()).unwrap_err();
        assert!(err.contains("does not divide"), "{err}");
    }

    #[test]
    fn tc1_fits_device_tc2_fits_device() {
        let cost = CostModel::default();
        let dev = dfcnn_fpga::Device::xc7vx485t();
        let d1 = NetworkDesign::new(
            &tc1_network(),
            PortConfig::paper_test_case_1(),
            DesignConfig::default(),
        )
        .unwrap();
        let d2 = NetworkDesign::new(
            &tc2_network(),
            PortConfig::paper_test_case_2(),
            DesignConfig::default(),
        )
        .unwrap();
        let r1 = d1.resources(&cost);
        let r2 = d2.resources(&cost);
        assert!(dev.fits(&r1), "TC1 must fit: {r1:?}");
        assert!(dev.fits(&r2), "TC2 must fit: {r2:?}");
        // Table I shape: TC2 uses more of everything
        assert!(r2.dsp > r1.dsp);
        assert!(r2.lut > r1.lut);
        assert!(r2.ff > r1.ff);
        assert!(r2.bram18 > r1.bram18);
    }

    #[test]
    fn tc2_bottleneck_is_conv1() {
        let d = NetworkDesign::new(
            &tc2_network(),
            PortConfig::paper_test_case_2(),
            DesignConfig::default(),
        )
        .unwrap();
        let (name, cyc) = d.estimated_bottleneck();
        assert_eq!(name, "conv1");
        // 784 windows * II 12 = 9408 cycles ≈ 94 µs
        assert!((9_000..10_000).contains(&cyc), "cycles = {cyc}");
    }

    #[test]
    fn tc1_bottleneck_is_input_stream() {
        let d = NetworkDesign::new(
            &tc1_network(),
            PortConfig::paper_test_case_1(),
            DesignConfig::default(),
        )
        .unwrap();
        let (name, cyc) = d.estimated_bottleneck();
        // 256 pixels at 1/cycle dominates every fully-parallel stage
        assert_eq!(name, "dma-source");
        assert_eq!(cyc, 256);
    }

    #[test]
    fn block_diagram_mentions_all_cores() {
        let d = NetworkDesign::new(
            &tc1_network(),
            PortConfig::paper_test_case_1(),
            DesignConfig::default(),
        )
        .unwrap();
        let diag = d.render_block_diagram();
        for n in ["conv1", "pool1", "conv2", "fc1", "10 classes"] {
            assert!(diag.contains(n), "missing {n} in: {diag}");
        }
    }

    #[test]
    fn fabric_normalization_appends_the_logsoftmax_core() {
        let cfg = DesignConfig {
            fabric_normalization: true,
            ..DesignConfig::default()
        };
        let d = NetworkDesign::new(&tc1_network(), PortConfig::paper_test_case_1(), cfg).unwrap();
        let names: Vec<_> = d.cores().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["conv1", "pool1", "conv2", "fc1", "logsoftmax1"]);
        assert!(d.on_fabric_normalization());
        assert!(!d.host_normalization());
        assert_eq!(d.classes(), 10, "sink still collects 10 values");
        let diag = d.render_block_diagram();
        assert!(diag.contains("logsoftmax1"), "{diag}");
        assert!(diag.contains("LogSoftMax on fabric"), "{diag}");
    }

    #[test]
    fn default_design_keeps_normalization_on_host() {
        let d = NetworkDesign::new(
            &tc1_network(),
            PortConfig::paper_test_case_1(),
            DesignConfig::default(),
        )
        .unwrap();
        assert!(!d.on_fabric_normalization());
        assert!(d.host_normalization());
        assert!(d.render_block_diagram().contains("LogSoftMax on host"));
    }

    #[test]
    fn fabric_hw_forward_matches_reference_logsoftmax() {
        let net = tc1_network();
        let cfg = DesignConfig {
            fabric_normalization: true,
            ..DesignConfig::default()
        };
        let d = NetworkDesign::new(&net, PortConfig::paper_test_case_1(), cfg).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let x = dfcnn_tensor::init::random_volume(&mut rng, net.input_shape(), 0.0, 1.0);
        let hw = d.hw_forward(&x);
        // reference trace ends at the host LogSoftMax output
        let trace = net.forward_trace(&x);
        let reference = trace.last().unwrap();
        assert!(
            hw.max_abs_diff(reference) < 1e-4,
            "diff = {}",
            hw.max_abs_diff(reference)
        );
        let prob_sum: f32 = hw.as_slice().iter().map(|v| v.exp()).sum();
        assert!(
            (prob_sum - 1.0).abs() < 1e-4,
            "probabilities sum to {prob_sum}"
        );
    }

    #[test]
    fn hw_forward_close_to_reference() {
        let net = tc1_network();
        let d = NetworkDesign::new(
            &net,
            PortConfig::paper_test_case_1(),
            DesignConfig::default(),
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let x = dfcnn_tensor::init::random_volume(&mut rng, net.input_shape(), 0.0, 1.0);
        let hw = d.hw_forward(&x);
        // reference trace: compare pre-softmax scores
        let trace = net.forward_trace(&x);
        let reference = &trace[trace.len() - 2];
        assert!(
            hw.max_abs_diff(reference) < 1e-4,
            "diff = {}",
            hw.max_abs_diff(reference)
        );
    }

    #[test]
    fn chain_edges_are_the_linear_list() {
        let d = NetworkDesign::new(
            &tc1_network(),
            PortConfig::paper_test_case_1(),
            DesignConfig::default(),
        )
        .unwrap();
        assert!(!d.is_graph());
        assert!(d.stage_topo().is_none());
        let edges = d.edges();
        assert_eq!(edges.len(), d.cores().len() + 1);
        assert_eq!(edges[0].from, NodeRef::Source);
        assert_eq!(edges[0].to, NodeRef::Core(0));
        assert_eq!(edges[0].ports, 1, "conv1 reads one port");
        assert_eq!(edges.last().unwrap().to, NodeRef::Sink);
        assert_eq!(edges.last().unwrap().values_per_image, 10);
        for (i, e) in edges.iter().enumerate().skip(1).take(edges.len() - 2) {
            assert_eq!(e.from, NodeRef::Core(i - 1));
            assert_eq!(e.to, NodeRef::Core(i));
            assert_eq!(e.depth, d.config().inter_fifo_depth);
        }
        for i in 0..d.cores().len() {
            assert_eq!(d.core_in_degree(i), 1);
            assert_eq!(d.core_out_degree(i), 1);
        }
    }

    // --- fork/join graph construction ---

    use super::fixtures::residual_graph;
    use dfcnn_nn::act::Activation;
    use dfcnn_nn::layer::Conv2d;
    use dfcnn_tensor::{ConvGeometry, Tensor1, Tensor4};

    #[test]
    fn residual_graph_topology() {
        let d = residual_graph(DesignConfig::default());
        assert!(d.is_graph());
        let names: Vec<_> = d.cores().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["conv1", "fork1", "conv2", "scaleshift1", "add4", "fc1"]
        );
        // fork fans out to the branch conv and the join; the join reads two
        assert_eq!(d.core_out_degree(1), 2);
        assert_eq!(d.core_in_degree(4), 2);
        assert_eq!(d.classes(), 4);
        let topo = d.stage_topo().unwrap();
        let stage_names: Vec<_> = topo.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(
            stage_names,
            vec!["conv1", "conv2", "scaleshift1", "add4", "flatten", "fc1"]
        );
        // both add operands resolve: scaleshift stage and the trunk conv
        assert_eq!(
            topo[3].inputs,
            vec![StageInput::Stage(2), StageInput::Stage(0)]
        );
        // the fork has no stage: the skip operand taps the trunk directly
        let diag = d.render_block_diagram();
        for n in ["fork1 tee", "eltwise-add", "scaleshift1"] {
            assert!(diag.contains(n), "missing {n} in: {diag}");
        }
    }

    #[test]
    fn skip_fifo_is_auto_sized_for_the_conv_holdback() {
        let d = residual_graph(DesignConfig::default());
        // fork -> add edge: must hold the branch conv's line-buffer fill
        // ((3-1)*8 + 3) * 2 = 38 values > the default depth of 8
        let skip = d
            .edges()
            .iter()
            .find(|e| e.from == NodeRef::Core(1) && e.to == NodeRef::Core(4))
            .expect("skip edge exists");
        assert!(
            skip.depth * skip.ports >= 38,
            "skip FIFO too shallow: {} x {}",
            skip.depth,
            skip.ports
        );
        assert!(reconvergence_deficits(&d).is_empty());
        // the fork -> branch-conv edge keeps the default depth
        let branch = d
            .edges()
            .iter()
            .find(|e| e.from == NodeRef::Core(1) && e.to == NodeRef::Core(2))
            .unwrap();
        assert_eq!(branch.depth, d.config().inter_fifo_depth);
    }

    #[test]
    fn skip_fifo_cap_reintroduces_the_deficit() {
        let d = residual_graph(DesignConfig {
            skip_fifo_cap: Some(2),
            ..DesignConfig::default()
        });
        let deficits = reconvergence_deficits(&d);
        assert!(!deficits.is_empty(), "clamped skip FIFO must be deficient");
        assert_eq!(deficits[0].fork, "fork1");
        assert_eq!(deficits[0].join, "add4");
        assert!(deficits[0].capacity < deficits[0].required);
    }

    #[test]
    fn residual_reference_forward_composes_the_layers() {
        let d = residual_graph(DesignConfig::default());
        let x = Tensor3::from_fn(Shape3::new(8, 8, 2), |y, xx, c| {
            ((y * 8 + xx) as f32) * 0.01 + c as f32 * 0.3
        });
        let layers = d.network().layers();
        let trunk = layers[0].forward(&x);
        let branch = layers[2].forward(&layers[1].forward(&trunk));
        let sum = Tensor3::from_vec(
            trunk.shape(),
            branch
                .as_slice()
                .iter()
                .zip(trunk.as_slice())
                .map(|(a, b)| a + b)
                .collect(),
        );
        let flat = Tensor3::from_vec(Shape3::new(1, 1, 128), sum.as_slice().to_vec());
        let expect = layers[4].forward(&flat);
        let got = model::reference_forward(&d, &x);
        assert_eq!(got.as_slice(), expect.as_slice());
        // the hardware-order forward agrees within kernel rounding
        let hw = d.hw_forward(&x);
        assert!(
            hw.max_abs_diff(&expect) < 1e-4,
            "diff = {}",
            hw.max_abs_diff(&expect)
        );
    }

    #[test]
    fn graph_builder_rejects_bad_wiring() {
        let input = Shape3::new(8, 8, 2);
        let (mut g, x) = GraphBuilder::new(input, DesignConfig::default());
        let err = g.fork(x, 2).unwrap_err();
        assert!(err.contains("source"), "{err}");

        let (mut g, x) = GraphBuilder::new(input, DesignConfig::default());
        let geo = ConvGeometry::new(input, 3, 3, 1, 1);
        let f = Tensor4::from_fn(2, 3, 3, 2, |_, _, _, _| 0.1);
        let conv = Conv2d::new(geo, f, Tensor1::zeros(2), Activation::Identity);
        let x = g.layer(x, conv, LayerPorts::SINGLE).unwrap();
        let mut taps = g.fork(x, 2).unwrap();
        let b = taps.pop().unwrap();
        let a = taps.pop().unwrap();
        // pool one branch so shapes diverge: the join must reject it
        let pgeo = ConvGeometry::new(input, 2, 2, 2, 0);
        let pool = dfcnn_nn::layer::Pool2d::new(pgeo, dfcnn_nn::layer::PoolKind::Max);
        let a = g.layer(a, pool, LayerPorts::SINGLE).unwrap();
        let err = g.add(a, b).unwrap_err();
        assert!(err.contains("share a shape"), "{err}");
    }

    #[test]
    fn graph_with_port_mismatch_inserts_an_adapter() {
        let input = Shape3::new(8, 8, 2);
        let geo = ConvGeometry::new(input, 3, 3, 1, 1);
        let mk_conv = |seed: usize| {
            let f = Tensor4::from_fn(2, 3, 3, 2, move |k, y, x, c| {
                ((seed + k + y + x + c) as f32) * 0.03
            });
            Conv2d::new(geo, f, Tensor1::zeros(2), Activation::Identity)
        };
        let (mut g, x) = GraphBuilder::new(input, DesignConfig::default());
        let x = g.layer(x, mk_conv(0), LayerPorts::SINGLE).unwrap();
        let mut taps = g.fork(x, 2).unwrap();
        let skip = taps.pop().unwrap();
        let a = taps.pop().unwrap();
        // branch conv reads 2 ports while the fork emits 1: demux needed
        let a = g
            .layer(
                a,
                mk_conv(1),
                LayerPorts {
                    in_ports: 2,
                    out_ports: 1,
                },
            )
            .unwrap();
        let x = g.add(a, skip).unwrap();
        let d = g.finish(x).unwrap();
        assert!(
            d.cores().iter().any(|c| c.name.starts_with("demux")),
            "missing demux: {:?}",
            d.cores().iter().map(|c| &c.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn concat_rejects_bad_wiring() {
        let input = Shape3::new(8, 8, 2);
        let geo = ConvGeometry::new(input, 3, 3, 1, 1);
        let mk_conv = || {
            let f = Tensor4::from_fn(2, 3, 3, 2, |_, _, _, _| 0.1);
            Conv2d::new(geo, f, Tensor1::zeros(2), Activation::Identity)
        };
        // pixel-grid mismatch
        let (mut g, x) = GraphBuilder::new(input, DesignConfig::default());
        let x = g.layer(x, mk_conv(), LayerPorts::SINGLE).unwrap();
        let mut taps = g.fork(x, 2).unwrap();
        let b = taps.pop().unwrap();
        let a = taps.pop().unwrap();
        let pgeo = ConvGeometry::new(input, 2, 2, 2, 0);
        let pool = dfcnn_nn::layer::Pool2d::new(pgeo, dfcnn_nn::layer::PoolKind::Max);
        let a = g.layer(a, pool, LayerPorts::SINGLE).unwrap();
        let err = g.concat(a, b).unwrap_err();
        assert!(err.contains("pixel grid"), "{err}");

        // port-count mismatch
        let (mut g, x) = GraphBuilder::new(input, DesignConfig::default());
        let x = g.layer(x, mk_conv(), LayerPorts::SINGLE).unwrap();
        let mut taps = g.fork(x, 2).unwrap();
        let b = taps.pop().unwrap();
        let a = taps.pop().unwrap();
        let a = g
            .layer(
                a,
                mk_conv(),
                LayerPorts {
                    in_ports: 1,
                    out_ports: 2,
                },
            )
            .unwrap();
        let err = g.concat(a, b).unwrap_err();
        assert!(err.contains("share a port count"), "{err}");
    }

    #[test]
    fn concat_join_widens_the_stream() {
        let input = Shape3::new(6, 6, 2);
        let geo = ConvGeometry::new(input, 3, 3, 1, 1);
        let mk_conv = |maps: usize| {
            let f = Tensor4::from_fn(maps, 3, 3, 2, |k, y, x, c| ((k + y + x + c) as f32) * 0.02);
            Conv2d::new(geo, f, Tensor1::zeros(maps), Activation::Identity)
        };
        let (mut g, x) = GraphBuilder::new(input, DesignConfig::default());
        let x = g.layer(x, mk_conv(2), LayerPorts::SINGLE).unwrap();
        let mut taps = g.fork(x, 2).unwrap();
        let b = taps.pop().unwrap();
        let a = taps.pop().unwrap();
        let a = g.layer(a, mk_conv(4), LayerPorts::SINGLE).unwrap();
        let x = g.concat(a, b).unwrap();
        assert_eq!(x.shape(), Shape3::new(6, 6, 6));
        let d = g.finish(x).unwrap();
        assert!(d.cores().iter().any(|c| c.name.starts_with("concat")));
        // the concat's two in-edges carry per-operand volumes
        let concat_idx = d
            .cores()
            .iter()
            .position(|c| c.name.starts_with("concat"))
            .unwrap();
        let vols: Vec<u64> = d
            .edges()
            .iter()
            .filter(|e| e.to == NodeRef::Core(concat_idx))
            .map(|e| e.values_per_image)
            .collect();
        assert_eq!(vols, vec![4 * 36, 2 * 36]);
    }

    #[test]
    fn graph_spec_lowers_without_hand_wiring() {
        use dfcnn_nn::topology::GraphSpec;
        let spec = GraphSpec::resnet8(Shape3::new(8, 8, 3), [2, 4, 4], 4);
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let layers = spec.build_layers(&mut rng);
        let ports = PortConfig::single_port(spec.paper_depth());
        let d = build_graph_design(&spec, &layers, &ports, DesignConfig::default()).unwrap();
        let names: Vec<&str> = d.cores().iter().map(|c| c.name.as_str()).collect();
        // three residual blocks: three forks, three adds, two 1x1 skips
        assert_eq!(names.iter().filter(|n| n.starts_with("fork")).count(), 3);
        assert_eq!(names.iter().filter(|n| n.starts_with("add")).count(), 3);
        assert_eq!(names.iter().filter(|n| n.starts_with("conv")).count(), 9);
        assert_eq!(d.classes(), 4);
        assert!(d.is_graph());

        // the inception cell folds its 4-way concat pairwise
        let spec = GraphSpec::inception_cell();
        let layers = spec.build_layers(&mut rng);
        let ports = PortConfig::single_port(spec.paper_depth());
        let d = build_graph_design(&spec, &layers, &ports, DesignConfig::default()).unwrap();
        let concats = d
            .cores()
            .iter()
            .filter(|c| c.name.starts_with("concat"))
            .count();
        assert_eq!(concats, 3);
    }

    #[test]
    fn graph_lowering_rejects_mismatched_ports_len() {
        use dfcnn_nn::topology::GraphSpec;
        let spec = GraphSpec::inception_cell();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let layers = spec.build_layers(&mut rng);
        let short = PortConfig::single_port(spec.paper_depth() - 1);
        let err = build_graph_design(&spec, &layers, &short, DesignConfig::default()).unwrap_err();
        assert!(err.contains("shorter"), "{err}");
        let long = PortConfig::single_port(spec.paper_depth() + 1);
        let err = build_graph_design(&spec, &layers, &long, DesignConfig::default()).unwrap_err();
        assert!(err.contains("longer"), "{err}");
    }
}
