/root/repo/target/release/deps/ablation_accum-c583bbde81bba9f9.d: crates/bench/src/bin/ablation_accum.rs

/root/repo/target/release/deps/ablation_accum-c583bbde81bba9f9: crates/bench/src/bin/ablation_accum.rs

crates/bench/src/bin/ablation_accum.rs:
