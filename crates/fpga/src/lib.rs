//! # dfcnn-fpga
//!
//! Platform models standing in for the paper's hardware: the Xilinx VC707
//! board (Virtex-7 xc7vx485t, §V-A), the Vivado resource report (Table I),
//! the power measurement (Table II), and the AXI/DMA data path ("the
//! datapath from the DMA towards the CNN is 32 bits wide and the available
//! bandwidth ... is 400MB/s", §V-C).
//!
//! Nothing here synthesises gates. The [`resources`] module is an
//! *analytical cost model*: it predicts FF/LUT/BRAM/DSP consumption of each
//! generated core from its design parameters, using per-operator costs
//! representative of Xilinx floating-point IP on Virtex-7. Its purpose is
//! the same as the authors' Vivado reports — decide whether a configuration
//! *fits* and whether a layer can be parallelised — and to regenerate
//! Table I's utilisation rows with the right shape (test case 2 heavier
//! than test case 1, DSP the tightest resource, BRAM the loosest).
//!
//! Module map:
//! - [`device`]: FPGA device database (xc7vx485t, plus the Stratix V D5 of
//!   the Microsoft baseline \[28\] for reference).
//! - [`resources`]: resource vectors and the per-core cost model.
//! - [`power`]: board-level power model for the GFLOPS/W column.
//! - [`axi`]: AXI4-Stream beat/handshake types.
//! - [`dma`]: bandwidth-limited DMA source/sink timing model.
//! - [`host`]: the Microblaze/Axi-Timer measurement protocol (batch
//!   staging, per-image timestamps, Fig. 6 statistics).
//! - [`report`]: Table-I-style utilisation rendering.

pub mod axi;
pub mod device;
pub mod dma;
pub mod host;
pub mod power;
pub mod report;
pub mod resources;

pub use device::Device;
pub use dma::{DmaChannel, DmaConfig};
pub use power::PowerModel;
pub use resources::{CoreKind, CoreParams, CostModel, Resources};
