/root/repo/target/release/deps/dfcnn_fpga-e5b55dc9295cc94d.d: crates/fpga/src/lib.rs crates/fpga/src/axi.rs crates/fpga/src/device.rs crates/fpga/src/dma.rs crates/fpga/src/host.rs crates/fpga/src/power.rs crates/fpga/src/report.rs crates/fpga/src/resources.rs

/root/repo/target/release/deps/dfcnn_fpga-e5b55dc9295cc94d: crates/fpga/src/lib.rs crates/fpga/src/axi.rs crates/fpga/src/device.rs crates/fpga/src/dma.rs crates/fpga/src/host.rs crates/fpga/src/power.rs crates/fpga/src/report.rs crates/fpga/src/resources.rs

crates/fpga/src/lib.rs:
crates/fpga/src/axi.rs:
crates/fpga/src/device.rs:
crates/fpga/src/dma.rs:
crates/fpga/src/host.rs:
crates/fpga/src/power.rs:
crates/fpga/src/report.rs:
crates/fpga/src/resources.rs:
