//! Typed HLS directives.
//!
//! The paper drives Vivado HLS with three directives: `PIPELINE` (with the
//! Eq. 4 initiation interval) "applied to all the internal loops, including
//! also the input/output operations" (§IV-A), partial `UNROLL` (the FC
//! accumulator interleave, §IV-B) and complete `ARRAY_PARTITION` (the
//! window buffer is "completely partitioned"). These types are carried in
//! the core configurations so the resource estimator and the simulator can
//! see which optimisation was requested — the same role the TCL directives
//! play for the real tool.

use serde::{Deserialize, Serialize};

/// `#pragma HLS PIPELINE II=<n>`
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineDirective {
    /// Requested initiation interval (Eq. 4 for compute cores).
    pub ii: u32,
}

impl PipelineDirective {
    /// A pipeline with the given initiation interval.
    pub fn with_ii(ii: u32) -> Self {
        assert!(ii >= 1, "initiation interval must be at least 1");
        PipelineDirective { ii }
    }

    /// Fully-pipelined (`II = 1`).
    pub fn full() -> Self {
        Self::with_ii(1)
    }
}

/// `#pragma HLS UNROLL factor=<n>` — partial loop unrolling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Unroll {
    /// Unroll factor (1 = no unrolling).
    pub factor: u32,
}

impl Unroll {
    /// Unroll by `factor`.
    pub fn by(factor: u32) -> Self {
        assert!(factor >= 1, "unroll factor must be at least 1");
        Unroll { factor }
    }

    /// No unrolling.
    pub fn none() -> Self {
        Self::by(1)
    }
}

/// `#pragma HLS ARRAY_PARTITION` — how a buffer is split across registers
/// or BRAM banks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ArrayPartition {
    /// Keep in a single BRAM.
    #[default]
    None,
    /// Split into `n` banks, cyclically.
    Cyclic(u32),
    /// Split into `n` contiguous banks.
    Block(u32),
    /// Fully partition into registers — the paper's choice for the window
    /// buffer ("copied on a completely partitioned buffer").
    Complete,
}

impl ArrayPartition {
    /// Number of independently-addressable banks an array of `len` elements
    /// ends up in (registers count as one bank each).
    pub fn banks(&self, len: usize) -> usize {
        match self {
            ArrayPartition::None => 1,
            ArrayPartition::Cyclic(n) | ArrayPartition::Block(n) => (*n as usize).min(len).max(1),
            ArrayPartition::Complete => len.max(1),
        }
    }

    /// Whether the array is held entirely in flip-flops (no BRAM).
    pub fn is_registers(&self) -> bool {
        matches!(self, ArrayPartition::Complete)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_full_has_ii_1() {
        assert_eq!(PipelineDirective::full().ii, 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_ii_rejected() {
        PipelineDirective::with_ii(0);
    }

    #[test]
    fn partition_banks() {
        assert_eq!(ArrayPartition::None.banks(100), 1);
        assert_eq!(ArrayPartition::Cyclic(4).banks(100), 4);
        assert_eq!(ArrayPartition::Block(8).banks(3), 3); // clamped to len
        assert_eq!(ArrayPartition::Complete.banks(25), 25);
        assert!(ArrayPartition::Complete.is_registers());
        assert!(!ArrayPartition::Cyclic(2).is_registers());
    }

    #[test]
    fn unroll_none_is_factor_1() {
        assert_eq!(Unroll::none().factor, 1);
    }
}
