/root/repo/target/debug/deps/dfcnn_fpga-243d581fba5c8ecb.d: crates/fpga/src/lib.rs crates/fpga/src/axi.rs crates/fpga/src/device.rs crates/fpga/src/dma.rs crates/fpga/src/host.rs crates/fpga/src/power.rs crates/fpga/src/report.rs crates/fpga/src/resources.rs

/root/repo/target/debug/deps/libdfcnn_fpga-243d581fba5c8ecb.rlib: crates/fpga/src/lib.rs crates/fpga/src/axi.rs crates/fpga/src/device.rs crates/fpga/src/dma.rs crates/fpga/src/host.rs crates/fpga/src/power.rs crates/fpga/src/report.rs crates/fpga/src/resources.rs

/root/repo/target/debug/deps/libdfcnn_fpga-243d581fba5c8ecb.rmeta: crates/fpga/src/lib.rs crates/fpga/src/axi.rs crates/fpga/src/device.rs crates/fpga/src/dma.rs crates/fpga/src/host.rs crates/fpga/src/power.rs crates/fpga/src/report.rs crates/fpga/src/resources.rs

crates/fpga/src/lib.rs:
crates/fpga/src/axi.rs:
crates/fpga/src/device.rs:
crates/fpga/src/dma.rs:
crates/fpga/src/host.rs:
crates/fpga/src/power.rs:
crates/fpga/src/report.rs:
crates/fpga/src/resources.rs:
