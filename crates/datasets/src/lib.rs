//! # dfcnn-datasets
//!
//! Synthetic, deterministic stand-ins for the paper's evaluation datasets.
//!
//! The paper trains and tests its two networks on **USPS** (16×16 grayscale
//! handwritten digits from the U.S. Postal Service) and **CIFAR-10** (32×32
//! RGB natural images). Neither dataset is redistributable inside this
//! repository, and the paper's claims are about *throughput and latency of
//! the dataflow architecture*, not about absolute accuracy — the accelerator
//! computes the same function as the software network whatever the pixels
//! are. We therefore substitute procedural generators that preserve what
//! matters:
//!
//! - exact input shapes (`16×16×1` and `32×32×3`), value range `[0, 1]`,
//!   10 classes each;
//! - enough class structure that the reference trainer reaches high accuracy
//!   (so "frozen weights" are meaningful, not noise);
//! - full determinism from a `u64` seed (ChaCha8), so every experiment in
//!   the repository is reproducible bit-for-bit.
//!
//! See DESIGN.md §2 for the substitution table.

pub mod batch;
pub mod cifar;
pub mod usps;

pub use batch::{Dataset, Split};
pub use cifar::SyntheticCifar;
pub use usps::SyntheticUsps;

use dfcnn_tensor::Tensor3;

/// A labelled image sample.
pub type Sample = (Tensor3<f32>, usize);

/// Common interface of the synthetic dataset generators.
pub trait Generator {
    /// Number of classes (10 for both paper datasets).
    fn classes(&self) -> usize;
    /// Shape of one image.
    fn shape(&self) -> dfcnn_tensor::Shape3;
    /// Generate `n` samples with labels cycling through the classes.
    fn generate(&mut self, n: usize) -> Vec<Sample>;
}
