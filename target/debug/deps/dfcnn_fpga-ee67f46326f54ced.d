/root/repo/target/debug/deps/dfcnn_fpga-ee67f46326f54ced.d: crates/fpga/src/lib.rs crates/fpga/src/axi.rs crates/fpga/src/device.rs crates/fpga/src/dma.rs crates/fpga/src/host.rs crates/fpga/src/power.rs crates/fpga/src/report.rs crates/fpga/src/resources.rs Cargo.toml

/root/repo/target/debug/deps/libdfcnn_fpga-ee67f46326f54ced.rmeta: crates/fpga/src/lib.rs crates/fpga/src/axi.rs crates/fpga/src/device.rs crates/fpga/src/dma.rs crates/fpga/src/host.rs crates/fpga/src/power.rs crates/fpga/src/report.rs crates/fpga/src/resources.rs Cargo.toml

crates/fpga/src/lib.rs:
crates/fpga/src/axi.rs:
crates/fpga/src/device.rs:
crates/fpga/src/dma.rs:
crates/fpga/src/host.rs:
crates/fpga/src/power.rs:
crates/fpga/src/report.rs:
crates/fpga/src/resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
