/root/repo/target/debug/deps/dfcnn_hls-3eaacd377cb915be.d: crates/hls/src/lib.rs crates/hls/src/accum.rs crates/hls/src/directive.rs crates/hls/src/ii.rs crates/hls/src/latency.rs crates/hls/src/pipeline.rs crates/hls/src/reduce.rs

/root/repo/target/debug/deps/libdfcnn_hls-3eaacd377cb915be.rlib: crates/hls/src/lib.rs crates/hls/src/accum.rs crates/hls/src/directive.rs crates/hls/src/ii.rs crates/hls/src/latency.rs crates/hls/src/pipeline.rs crates/hls/src/reduce.rs

/root/repo/target/debug/deps/libdfcnn_hls-3eaacd377cb915be.rmeta: crates/hls/src/lib.rs crates/hls/src/accum.rs crates/hls/src/directive.rs crates/hls/src/ii.rs crates/hls/src/latency.rs crates/hls/src/pipeline.rs crates/hls/src/reduce.rs

crates/hls/src/lib.rs:
crates/hls/src/accum.rs:
crates/hls/src/directive.rs:
crates/hls/src/ii.rs:
crates/hls/src/latency.rs:
crates/hls/src/pipeline.rs:
crates/hls/src/reduce.rs:
