/root/repo/target/debug/deps/paper_reproduction-94eac8be4ff9dfcc.d: tests/paper_reproduction.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_reproduction-94eac8be4ff9dfcc.rmeta: tests/paper_reproduction.rs Cargo.toml

tests/paper_reproduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
