//! Sub-sampling (pooling) layer — reference implementation.
//!
//! Per §II-A the layer "swipes a filter on the volume in order to cluster
//! locally connected data ... applied on each channel separately" using
//! either *max-pooling* or *mean-pooling*. Both paper test cases use a 2×2
//! window with stride 2.

use dfcnn_tensor::iter::WindowPositions;
use dfcnn_tensor::{ConvGeometry, Shape3, Tensor3};
use serde::{Deserialize, Serialize};

/// Pooling function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Replace each window with its maximum.
    Max,
    /// Replace each window with its mean.
    Mean,
}

/// A sub-sampling layer.
#[derive(Clone, Debug)]
pub struct Pool2d {
    geo: ConvGeometry,
    kind: PoolKind,
}

impl Pool2d {
    /// Create a pooling layer. Pooling never pads in the paper's designs,
    /// so `geo.pad` must be zero.
    pub fn new(geo: ConvGeometry, kind: PoolKind) -> Self {
        assert_eq!(geo.pad, 0, "pooling layers do not use zero padding");
        Pool2d { geo, kind }
    }

    /// The window/stride geometry.
    pub fn geometry(&self) -> &ConvGeometry {
        &self.geo
    }

    /// The pooling function.
    pub fn kind(&self) -> PoolKind {
        self.kind
    }

    /// Output volume shape (channel count preserved).
    pub fn output_shape(&self) -> Shape3 {
        self.geo.pool_output()
    }

    /// Forward pass.
    pub fn forward(&self, input: &Tensor3<f32>) -> Tensor3<f32> {
        assert_eq!(input.shape(), self.geo.input, "input shape mismatch");
        let c = self.geo.input.c;
        let mut out = Tensor3::zeros(self.output_shape());
        let ow = self.geo.out_w();
        let win = (self.geo.kh * self.geo.kw) as f32;
        for (pos, (y0, x0)) in WindowPositions::new(self.geo).enumerate() {
            let (oy, ox) = (pos / ow, pos % ow);
            for ch in 0..c {
                let mut acc = match self.kind {
                    PoolKind::Max => f32::NEG_INFINITY,
                    PoolKind::Mean => 0.0,
                };
                for dy in 0..self.geo.kh {
                    for dx in 0..self.geo.kw {
                        let v = input.get((y0 as usize) + dy, (x0 as usize) + dx, ch);
                        acc = match self.kind {
                            PoolKind::Max => acc.max(v),
                            PoolKind::Mean => acc + v,
                        };
                    }
                }
                if self.kind == PoolKind::Mean {
                    acc /= win;
                }
                out.set(oy, ox, ch, acc);
            }
        }
        out
    }

    /// Backward pass: routes `grad_out` to the max location (max-pooling)
    /// or spreads it uniformly (mean-pooling). Ties in max-pooling send the
    /// gradient to the first maximal element in window scan order, matching
    /// the forward implementation's comparison order.
    pub fn backward(&self, input: &Tensor3<f32>, grad_out: &Tensor3<f32>) -> Tensor3<f32> {
        assert_eq!(input.shape(), self.geo.input);
        assert_eq!(grad_out.shape(), self.output_shape());
        let c = self.geo.input.c;
        let mut grad_in = Tensor3::zeros(input.shape());
        let ow = self.geo.out_w();
        let win = (self.geo.kh * self.geo.kw) as f32;
        for (pos, (y0, x0)) in WindowPositions::new(self.geo).enumerate() {
            let (oy, ox) = (pos / ow, pos % ow);
            for ch in 0..c {
                let g = grad_out.get(oy, ox, ch);
                match self.kind {
                    PoolKind::Mean => {
                        for dy in 0..self.geo.kh {
                            for dx in 0..self.geo.kw {
                                *grad_in.get_mut((y0 as usize) + dy, (x0 as usize) + dx, ch) +=
                                    g / win;
                            }
                        }
                    }
                    PoolKind::Max => {
                        let (mut by, mut bx) = (y0 as usize, x0 as usize);
                        let mut best = f32::NEG_INFINITY;
                        for dy in 0..self.geo.kh {
                            for dx in 0..self.geo.kw {
                                let v = input.get((y0 as usize) + dy, (x0 as usize) + dx, ch);
                                if v > best {
                                    best = v;
                                    by = (y0 as usize) + dy;
                                    bx = (x0 as usize) + dx;
                                }
                            }
                        }
                        *grad_in.get_mut(by, bx, ch) += g;
                    }
                }
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo_2x2s2(h: usize, w: usize, c: usize) -> ConvGeometry {
        ConvGeometry::new(Shape3::new(h, w, c), 2, 2, 2, 0)
    }

    #[test]
    fn maxpool_picks_maxima() {
        let x = Tensor3::from_vec(
            Shape3::new(2, 4, 1),
            vec![1.0, 5.0, 3.0, 2.0, 4.0, 0.0, -1.0, 7.0],
        );
        let p = Pool2d::new(geo_2x2s2(2, 4, 1), PoolKind::Max);
        let y = p.forward(&x);
        assert_eq!(y.shape(), Shape3::new(1, 2, 1));
        assert_eq!(y.as_slice(), &[5.0, 7.0]);
    }

    #[test]
    fn meanpool_averages() {
        let x = Tensor3::from_vec(Shape3::new(2, 2, 1), vec![1.0, 2.0, 3.0, 6.0]);
        let p = Pool2d::new(geo_2x2s2(2, 2, 1), PoolKind::Mean);
        assert_eq!(p.forward(&x).as_slice(), &[3.0]);
    }

    #[test]
    fn channels_pooled_independently() {
        // 2 channels, max over a single window
        let x = Tensor3::from_fn(Shape3::new(2, 2, 2), |y, xx, c| {
            (y * 2 + xx) as f32 * if c == 0 { 1.0 } else { -1.0 }
        });
        let p = Pool2d::new(geo_2x2s2(2, 2, 2), PoolKind::Max);
        let y = p.forward(&x);
        assert_eq!(y.get(0, 0, 0), 3.0);
        assert_eq!(y.get(0, 0, 1), 0.0); // max of {0,-1,-2,-3}
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor3::from_vec(Shape3::new(2, 2, 1), vec![1.0, 9.0, 3.0, 4.0]);
        let p = Pool2d::new(geo_2x2s2(2, 2, 1), PoolKind::Max);
        let g = Tensor3::full(Shape3::new(1, 1, 1), 2.5);
        let gi = p.backward(&x, &g);
        assert_eq!(gi.as_slice(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn meanpool_backward_spreads_uniformly() {
        let x = Tensor3::zeros(Shape3::new(2, 2, 1));
        let p = Pool2d::new(geo_2x2s2(2, 2, 1), PoolKind::Mean);
        let g = Tensor3::full(Shape3::new(1, 1, 1), 4.0);
        let gi = p.backward(&x, &g);
        assert_eq!(gi.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn maxpool_tie_goes_to_first_in_scan_order() {
        let x = Tensor3::from_vec(Shape3::new(2, 2, 1), vec![5.0, 5.0, 5.0, 5.0]);
        let p = Pool2d::new(geo_2x2s2(2, 2, 1), PoolKind::Max);
        let g = Tensor3::full(Shape3::new(1, 1, 1), 1.0);
        let gi = p.backward(&x, &g);
        assert_eq!(gi.as_slice(), &[1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "do not use zero padding")]
    fn padded_pooling_rejected() {
        let geo = ConvGeometry::new(Shape3::new(4, 4, 1), 2, 2, 2, 1);
        Pool2d::new(geo, PoolKind::Max);
    }
}
