/root/repo/target/release/deps/dfcnn_tensor-ff34ccfdfbf5a57d.d: crates/tensor/src/lib.rs crates/tensor/src/fixed.rs crates/tensor/src/init.rs crates/tensor/src/iter.rs crates/tensor/src/shape.rs crates/tensor/src/tensor1.rs crates/tensor/src/tensor3.rs crates/tensor/src/tensor4.rs

/root/repo/target/release/deps/dfcnn_tensor-ff34ccfdfbf5a57d: crates/tensor/src/lib.rs crates/tensor/src/fixed.rs crates/tensor/src/init.rs crates/tensor/src/iter.rs crates/tensor/src/shape.rs crates/tensor/src/tensor1.rs crates/tensor/src/tensor3.rs crates/tensor/src/tensor4.rs

crates/tensor/src/lib.rs:
crates/tensor/src/fixed.rs:
crates/tensor/src/init.rs:
crates/tensor/src/iter.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor1.rs:
crates/tensor/src/tensor3.rs:
crates/tensor/src/tensor4.rs:
