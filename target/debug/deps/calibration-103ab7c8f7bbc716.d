/root/repo/target/debug/deps/calibration-103ab7c8f7bbc716.d: crates/bench/src/bin/calibration.rs Cargo.toml

/root/repo/target/debug/deps/libcalibration-103ab7c8f7bbc716.rmeta: crates/bench/src/bin/calibration.rs Cargo.toml

crates/bench/src/bin/calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
