/root/repo/target/release/deps/proptest-bc31e01375d4fc6f.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-bc31e01375d4fc6f: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
