/root/repo/target/release/deps/dfcnn-85026091fcae66cd.d: src/lib.rs

/root/repo/target/release/deps/dfcnn-85026091fcae66cd: src/lib.rs

src/lib.rs:
