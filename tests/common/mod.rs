//! Shared generators for whole-design randomised tests (used by
//! `random_designs.rs` and `engine_conformance.rs`; this directory is not
//! itself compiled as a test crate).

#![allow(dead_code)]

use dfcnn::core::graph::{LayerPorts, PortConfig};
use dfcnn::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A random small-but-real topology: conv [pool] conv? flatten linear.
pub fn random_spec() -> impl Strategy<Value = NetworkSpec> {
    (
        6usize..11,          // input h = w
        1usize..4,           // input channels
        1usize..5,           // conv1 maps
        2usize..4,           // conv1 window
        proptest::bool::ANY, // pool present
        proptest::bool::ANY, // second conv present
        2usize..6,           // classes
        proptest::bool::ANY, // relu vs tanh
    )
        .prop_map(|(hw, c, k1, win1, with_pool, with_conv2, classes, relu)| {
            let act = if relu {
                Activation::Relu
            } else {
                Activation::Tanh
            };
            let mut layers = vec![LayerSpec::Conv {
                kh: win1,
                kw: win1,
                out_maps: k1,
                stride: 1,
                pad: 0,
                activation: act,
            }];
            let mut cur = hw - win1 + 1;
            if with_pool && cur >= 2 {
                layers.push(LayerSpec::Pool {
                    kh: 2,
                    kw: 2,
                    stride: 2,
                    kind: PoolKind::Max,
                });
                cur /= 2;
            }
            if with_conv2 && cur >= 2 {
                layers.push(LayerSpec::Conv {
                    kh: 2,
                    kw: 2,
                    out_maps: 2 * k1,
                    stride: 1,
                    pad: 0,
                    activation: act,
                });
            }
            layers.push(LayerSpec::Flatten);
            layers.push(LayerSpec::Linear {
                outputs: classes,
                activation: Activation::Identity,
            });
            layers.push(LayerSpec::LogSoftmax);
            NetworkSpec {
                name: "random".into(),
                input: Shape3::new(hw, hw, c),
                layers,
            }
        })
}

/// Pick a random valid port configuration for a built network: each conv
/// or pool layer gets random divisors of its FM counts; FC stays single.
pub fn random_ports(spec: &NetworkSpec, seed: u64) -> PortConfig {
    use rand::Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let shapes = spec.shapes();
    let mut layers = Vec::new();
    for (i, l) in spec.layers.iter().enumerate() {
        let in_c = shapes[i].c;
        let out_c = shapes[i + 1].c;
        let pick = |n: usize, rng: &mut ChaCha8Rng| {
            let divs: Vec<usize> = (1..=n.min(6)).filter(|p| n.is_multiple_of(*p)).collect();
            divs[rng.gen_range(0..divs.len())]
        };
        match l {
            LayerSpec::Conv { .. } | LayerSpec::Pool { .. } => layers.push(LayerPorts {
                in_ports: pick(in_c, &mut rng),
                out_ports: pick(out_c, &mut rng),
            }),
            LayerSpec::Linear { .. } => layers.push(LayerPorts::SINGLE),
            _ => {}
        }
    }
    PortConfig { layers }
}
