//! Network design construction (§IV-C).
//!
//! "The design of an entire network starts from the choice of the
//! parameters to set for each module" — here, a [`PortConfig`] assigning
//! `IN_PORTS`/`OUT_PORTS` to every paper layer (conv, pool, linear) of a
//! trained [`dfcnn_nn::Network`]. [`NetworkDesign::new`] validates the
//! choice, computes every core's Eq. 4 initiation interval, sizes the
//! FIFOs, inserts demux/widen adapters at port-width mismatches, and
//! records the [`dfcnn_fpga::CoreParams`] that drive the resource model.
//!
//! From one design you can then:
//! - [`NetworkDesign::instantiate`] a cycle simulator for a batch,
//! - estimate per-stage intervals analytically,
//! - total the resource usage (Table I),
//! - render a Fig. 4/5-style block diagram,
//! - run the hardware-order forward pass on the host
//!   ([`NetworkDesign::hw_forward`]).
//!
//! Two presets reproduce the paper's designs: test case 1 with the first
//! conv and pool fully parallelised (Fig. 4) and test case 2 entirely
//! single-port (Fig. 5). The final LogSoftMax operator runs on the host
//! by default (the hardware designs of Figs. 4/5 end at the last linear
//! layer), so the sink collects the classifier scores; setting
//! [`DesignConfig::fabric_normalization`] appends the on-fabric
//! normalisation core instead and the sink collects log-probabilities.
//!
//! All per-layer-kind knowledge (validation, Eq. 4 II, actors, compute,
//! labels) comes from the [`crate::model`] registry — this module only
//! walks the chain.

use crate::endpoints::{Sink, SinkState, Source};
use crate::model;
use crate::sim::{Actor, Simulator};
use crate::stream::ChannelSet;
use dfcnn_fpga::dma::{DmaChannel, DmaConfig};
use dfcnn_fpga::resources::{CoreParams, CostModel, Resources};
use dfcnn_hls::latency::OpLatency;
use dfcnn_nn::layer::Layer;
use dfcnn_nn::Network;
use dfcnn_tensor::Tensor3;
use serde::{Deserialize, Serialize};

/// Port counts of one paper layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerPorts {
    /// `IN_PORTS`.
    pub in_ports: usize,
    /// `OUT_PORTS`.
    pub out_ports: usize,
}

impl LayerPorts {
    /// Single-input-port / single-output-port.
    pub const SINGLE: LayerPorts = LayerPorts {
        in_ports: 1,
        out_ports: 1,
    };
}

/// Port assignment for every paper layer (conv/pool/linear, in network
/// order; flatten and logsoftmax carry no ports).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortConfig {
    /// One entry per paper layer.
    pub layers: Vec<LayerPorts>,
}

impl PortConfig {
    /// All layers single-port.
    pub fn single_port(paper_layers: usize) -> Self {
        PortConfig {
            layers: vec![LayerPorts::SINGLE; paper_layers],
        }
    }

    /// The paper's Test Case 1 design (Fig. 4): conv1 and pool1 fully
    /// parallel (6 ports), conv2 reading 6 ports and emitting 1, FC
    /// single-port.
    pub fn paper_test_case_1() -> Self {
        PortConfig {
            layers: vec![
                LayerPorts {
                    in_ports: 1,
                    out_ports: 6,
                },
                LayerPorts {
                    in_ports: 6,
                    out_ports: 6,
                },
                LayerPorts {
                    in_ports: 6,
                    out_ports: 1,
                },
                LayerPorts::SINGLE,
            ],
        }
    }

    /// The paper's Test Case 2 design (Fig. 5): every layer
    /// single-input-port/single-output-port.
    pub fn paper_test_case_2() -> Self {
        Self::single_port(6)
    }
}

/// Global design knobs.
#[derive(Clone, Copy, Debug)]
pub struct DesignConfig {
    /// Operator latency table (f32 Virtex-7 by default).
    pub ops: OpLatency,
    /// Interleaved accumulator banks in FC cores (paper: ≥ add latency).
    pub fc_banks: usize,
    /// Depth of the inter-layer decoupling FIFOs.
    pub inter_fifo_depth: usize,
    /// DMA configuration for source and sink.
    pub dma: DmaConfig,
    /// Core clock (100 MHz on the VC707).
    pub clock_hz: u64,
    /// Run the final normalisation (LogSoftMax) on the fabric instead of
    /// the host. Off by default: the paper's designs end at the last
    /// linear layer and normalise on the CPU.
    pub fabric_normalization: bool,
    /// Fault injection: override every windowed core's per-port line
    /// buffer to this many values instead of the SST full-buffering bound.
    /// A value below the bound is a statically-provable deadlock — the
    /// [`crate::check`] verifier rejects it and the cycle simulator
    /// confirms by stalling out. `None` (the default) keeps the bound.
    pub line_buffer_cap: Option<usize>,
    /// Fault injection: skip the demux/widen adapters the builder would
    /// insert at port-width mismatches, leaving the boundary rates
    /// unreconciled. The [`crate::check`] verifier flags the mismatch as a
    /// rate-conservation error; the cycle simulator confirms by
    /// deadlocking on the unfed (or undrained) ports.
    pub omit_adapters: bool,
}

impl Default for DesignConfig {
    fn default() -> Self {
        let ops = OpLatency::f32_virtex7();
        DesignConfig {
            ops,
            fc_banks: ops.add as usize,
            inter_fifo_depth: 8,
            dma: DmaConfig::paper(),
            clock_hz: 100_000_000,
            fabric_normalization: false,
            line_buffer_cap: None,
            omit_adapters: false,
        }
    }
}

/// One generated core in the design (layer core or adapter).
#[derive(Clone, Debug)]
pub struct CoreInfo {
    /// Display name ("conv1", "pool1", "demux1", …).
    pub name: String,
    /// Cost-model parameters.
    pub params: CoreParams,
    /// Index into the network's layer list (`None` for adapters).
    pub layer_index: Option<usize>,
    /// Values entering the core per image (across all input ports).
    pub in_values_per_image: u64,
    /// Window positions per image (0 for FC cores and adapters).
    pub positions: u64,
}

/// A fully-validated accelerator design for one trained network.
#[derive(Clone, Debug)]
pub struct NetworkDesign {
    network: Network,
    ports: PortConfig,
    config: DesignConfig,
    cores: Vec<CoreInfo>,
    classes: usize,
}

impl NetworkDesign {
    /// Validate a port configuration against a trained network and derive
    /// every core's parameters.
    ///
    /// # Errors
    /// A human-readable message if the configuration is inconsistent
    /// (wrong layer count, ports not dividing FM counts, multi-port FC).
    pub fn new(network: &Network, ports: PortConfig, config: DesignConfig) -> Result<Self, String> {
        let paper_layers: Vec<(usize, &Layer)> = network
            .layers()
            .iter()
            .enumerate()
            .filter(|(_, l)| model::paper_layer_model(l).is_some())
            .collect();
        if paper_layers.len() != ports.layers.len() {
            return Err(format!(
                "port config has {} entries but the network has {} paper layers",
                ports.layers.len(),
                paper_layers.len()
            ));
        }
        let mut cores: Vec<CoreInfo> = Vec::new();
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        let mut prev_out_ports: Option<usize> = None;
        let mut classes = 0;
        let push_core = |cores: &mut Vec<CoreInfo>,
                         prev_out_ports: &mut Option<usize>,
                         m: &dyn model::CoreModel,
                         name: String,
                         layer_index: usize,
                         layer: &Layer,
                         lp: LayerPorts|
         -> Result<(), String> {
            m.validate(&name, layer, lp)?;
            let plan = m.plan(layer, lp, &config);
            // adapter between the previous layer's output and this input
            // (unless fault injection asked for the raw mismatch)
            if let Some(prev) = *prev_out_ports {
                if !config.omit_adapters {
                    if let Some(adapter) = model::adapter::plan_between(
                        prev,
                        lp.in_ports,
                        plan.params.in_fm,
                        plan.in_values_per_image,
                        cores.len(),
                    ) {
                        cores.push(adapter);
                    }
                }
            }
            cores.push(CoreInfo {
                name,
                params: plan.params,
                layer_index: Some(layer_index),
                in_values_per_image: plan.in_values_per_image,
                positions: plan.positions,
            });
            *prev_out_ports = Some(lp.out_ports);
            Ok(())
        };
        for ((layer_index, layer), lp) in paper_layers.iter().zip(ports.layers.iter()) {
            let m = model::paper_layer_model(layer).expect("filtered to paper layers");
            let name = model::next_name(&mut counts, m.label());
            if let Some(k) = m.classifier_outputs(layer) {
                classes = k;
            }
            push_core(
                &mut cores,
                &mut prev_out_ports,
                m,
                name,
                *layer_index,
                layer,
                *lp,
            )?;
        }
        if config.fabric_normalization {
            if let Some((layer_index, layer)) = network
                .layers()
                .iter()
                .enumerate()
                .find(|(_, l)| model::is_normalization(l))
            {
                let m = model::normalization_model();
                let name = model::next_name(&mut counts, m.label());
                push_core(
                    &mut cores,
                    &mut prev_out_ports,
                    m,
                    name,
                    layer_index,
                    layer,
                    LayerPorts::SINGLE,
                )?;
            }
        }
        Ok(NetworkDesign {
            network: network.clone(),
            ports,
            config,
            cores,
            classes,
        })
    }

    /// The trained network this design implements.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The port configuration.
    pub fn ports(&self) -> &PortConfig {
        &self.ports
    }

    /// The design knobs.
    pub fn config(&self) -> &DesignConfig {
        &self.config
    }

    /// Every generated core (layer cores and adapters, pipeline order).
    pub fn cores(&self) -> &[CoreInfo] {
        &self.cores
    }

    /// Mutable core list, for in-crate tests that tamper with derived
    /// parameters (e.g. seeding an Eq. 4 II violation for the static
    /// checker to catch).
    #[cfg(test)]
    pub(crate) fn cores_mut(&mut self) -> &mut Vec<CoreInfo> {
        &mut self.cores
    }

    /// Number of classifier outputs the sink collects per image.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Whether the design normalises (LogSoftMax) on the fabric: opted in
    /// via [`DesignConfig::fabric_normalization`] and the network actually
    /// ends in a normalisation operator.
    pub fn on_fabric_normalization(&self) -> bool {
        self.config.fabric_normalization
            && self.network.layers().iter().any(model::is_normalization)
    }

    /// Whether a host-side normalisation pass still follows the sink (the
    /// paper's default split).
    pub fn host_normalization(&self) -> bool {
        !self.on_fabric_normalization() && self.network.layers().iter().any(model::is_normalization)
    }

    /// The paper's layer count (used for the Fig. 6 convergence claim).
    pub fn paper_depth(&self) -> usize {
        self.ports.layers.len()
    }

    /// Total resource usage including the support platform (Table I).
    pub fn resources(&self, cost: &CostModel) -> Resources {
        self.cores
            .iter()
            .map(|c| cost.core(&c.params))
            .sum::<Resources>()
            + cost.platform_base()
            + cost.dma_engine()
    }

    /// Analytical per-core stage interval (cycles per image at steady
    /// state): the max of the input-serialisation, initiation and
    /// output-serialisation times. The slowest stage bounds the pipeline —
    /// "the pipeline interval is its slowest stage time" (§IV-C).
    pub fn estimate_stage_intervals(&self) -> Vec<(String, u64)> {
        self.cores
            .iter()
            .map(|c| {
                let interval = model::model_for(c.params.kind).estimate_interval(c, &self.config);
                (c.name.clone(), interval)
            })
            .collect()
    }

    /// The estimated bottleneck stage `(name, cycles per image)`.
    pub fn estimated_bottleneck(&self) -> (String, u64) {
        // include the source: the DMA needs input-volume / rate cycles
        let input_len = self.network.input_shape().len() as u64;
        let src_cycles = (input_len as f64 / self.config.dma.beats_per_cycle()).ceil() as u64
            + self.config.dma.setup_cycles;
        let mut best = ("dma-source".to_string(), src_cycles);
        for (name, cyc) in self.estimate_stage_intervals() {
            if cyc > best.1 {
                best = (name, cyc);
            }
        }
        best
    }

    /// Fig. 4/5-style block diagram.
    pub fn render_block_diagram(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("input {} -> ", self.network.input_shape()));
        for c in &self.cores {
            out.push_str(&model::model_for(c.params.kind).block_label(c));
            out.push_str(" -> ");
        }
        out.push_str(&format!(
            "{} classes (LogSoftMax on {})",
            self.classes,
            if self.on_fabric_normalization() {
                "fabric"
            } else {
                "host"
            }
        ));
        out
    }

    /// Run the hardware-order forward pass on the host (no timing):
    /// exactly what the accelerator computes for one image, ending at the
    /// values the sink collects (classifier scores, or log-probabilities
    /// when normalisation is on the fabric).
    pub fn hw_forward(&self, input: &Tensor3<f32>) -> Tensor3<f32> {
        let mut cur = input.clone();
        for spec in model::pipeline_stages(self) {
            let mut out = Tensor3::zeros(spec.out_shape);
            spec.make_worker().apply_into(&cur, &mut out);
            cur = out;
        }
        cur
    }

    /// Build the cycle simulator for a batch of images.
    pub fn instantiate(&self, images: &[Tensor3<f32>]) -> Simulator {
        self.instantiate_with_links(images, &[])
    }

    /// Build the cycle simulator with inter-FPGA link actors inserted
    /// after the named core indices (used by [`crate::multi`] to simulate
    /// a partitioned chain end to end). `links` pairs a core index with
    /// the link's `(words_per_cycle, latency_cycles)` timing.
    pub fn instantiate_with_links(
        &self,
        images: &[Tensor3<f32>],
        links: &[(usize, (f64, u64))],
    ) -> Simulator {
        assert!(!images.is_empty(), "empty batch");
        assert_eq!(
            images[0].shape(),
            self.network.input_shape(),
            "image shape does not match the network input"
        );
        let depth = self.config.inter_fifo_depth;
        let mut chans = ChannelSet::new();
        let mut actors: Vec<Box<dyn Actor>> = Vec::new();

        // channels feeding the first core
        let first_in = self.cores[0].params.in_ports;
        let mut cur_chs: Vec<_> = (0..first_in).map(|_| chans.alloc(depth)).collect();
        actors.push(Box::new(Source::new(
            images,
            cur_chs.clone(),
            DmaChannel::new(self.config.dma),
        )));

        for (core_idx, c) in self.cores.iter().enumerate() {
            let p = &c.params;
            // Adapters normally guarantee the producer's port count equals
            // the consumer's; with omit_adapters the boundary is left
            // mismatched, and the hardware analogue is wires tied off: the
            // consumer's surplus ports are fed by never-written channels
            // (it starves) and a producer's surplus ports drive undrained
            // channels (it backpressures). Either way the chain deadlocks,
            // which is exactly what the static checker predicts.
            match cur_chs.len().cmp(&p.in_ports) {
                std::cmp::Ordering::Less => {
                    while cur_chs.len() < p.in_ports {
                        cur_chs.push(chans.alloc(depth));
                    }
                }
                std::cmp::Ordering::Greater => cur_chs.truncate(p.in_ports),
                std::cmp::Ordering::Equal => {}
            }
            let out_chs: Vec<_> = (0..p.out_ports).map(|_| chans.alloc(depth)).collect();
            actors.push(model::model_for(p.kind).make_actor(
                self,
                c,
                cur_chs.clone(),
                out_chs.clone(),
            ));
            cur_chs = out_chs;

            // optional inter-FPGA link after this core
            if let Some(&(_, (wpc, lat))) = links.iter().find(|(i, _)| *i == core_idx) {
                let link_out: Vec<_> = cur_chs.iter().map(|_| chans.alloc(depth)).collect();
                actors.push(Box::new(crate::multi::LinkActor::new(
                    format!("link-after-{}", c.name),
                    cur_chs.clone(),
                    link_out.clone(),
                    wpc,
                    lat,
                )));
                cur_chs = link_out;
            }
        }

        let state = std::rc::Rc::new(std::cell::RefCell::new(SinkState::default()));
        actors.push(Box::new(Sink::new(
            cur_chs,
            self.classes,
            state.clone(),
            DmaChannel::new(self.config.dma),
        )));
        Simulator::new(actors, chans, images.len(), state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfcnn_nn::topology::NetworkSpec;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tc1_network() -> Network {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        NetworkSpec::test_case_1().build(&mut rng)
    }

    fn tc2_network() -> Network {
        let mut rng = ChaCha8Rng::seed_from_u64(20);
        NetworkSpec::test_case_2().build(&mut rng)
    }

    #[test]
    fn tc1_design_builds_with_paper_ports() {
        let d = NetworkDesign::new(
            &tc1_network(),
            PortConfig::paper_test_case_1(),
            DesignConfig::default(),
        )
        .unwrap();
        // conv1(II=1), pool1, conv2(II=16), fc1 — plus no adapters
        // (1->6 direct? conv1 out 6 ports -> pool in 6 ports: direct;
        //  pool out 6 -> conv2 in 6: direct; conv2 out 1 -> fc in 1: direct)
        let names: Vec<_> = d.cores().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["conv1", "pool1", "conv2", "fc1"]);
        let convs: Vec<_> = d
            .cores()
            .iter()
            .filter(|c| c.name.starts_with("conv"))
            .collect();
        assert_eq!(convs[0].params.ii, 1, "fully parallel conv1 has II=1");
        assert_eq!(convs[1].params.ii, 16, "conv2 II = max(16/1, 6/6)");
        assert_eq!(d.classes(), 10);
        assert_eq!(d.paper_depth(), 4);
    }

    #[test]
    fn tc2_design_all_single_port() {
        let d = NetworkDesign::new(
            &tc2_network(),
            PortConfig::paper_test_case_2(),
            DesignConfig::default(),
        )
        .unwrap();
        let iis: Vec<_> = d.cores().iter().map(|c| c.params.ii).collect();
        // conv1 II=12, pool1 II=12, conv2 II=36, pool2 II=36, fc(900), fc(72)
        assert_eq!(iis[0], 12);
        assert_eq!(iis[2], 36);
        assert_eq!(d.paper_depth(), 6);
    }

    #[test]
    fn adapter_inserted_on_port_mismatch() {
        // conv1 out 2 ports, pool in 1 port -> widen adapter
        let net = tc1_network();
        let cfg = PortConfig {
            layers: vec![
                LayerPorts {
                    in_ports: 1,
                    out_ports: 2,
                },
                LayerPorts::SINGLE,
                LayerPorts::SINGLE,
                LayerPorts::SINGLE,
            ],
        };
        let d = NetworkDesign::new(&net, cfg, DesignConfig::default()).unwrap();
        assert!(d.cores().iter().any(|c| c.name.starts_with("widen")));
    }

    #[test]
    fn demux_inserted_when_consumer_wider() {
        let net = tc1_network();
        let cfg = PortConfig {
            layers: vec![
                LayerPorts {
                    in_ports: 1,
                    out_ports: 1,
                },
                LayerPorts {
                    in_ports: 6,
                    out_ports: 6,
                },
                LayerPorts {
                    in_ports: 6,
                    out_ports: 1,
                },
                LayerPorts::SINGLE,
            ],
        };
        let d = NetworkDesign::new(&net, cfg, DesignConfig::default()).unwrap();
        assert!(d.cores().iter().any(|c| c.name.starts_with("demux")));
    }

    #[test]
    fn wrong_layer_count_rejected() {
        let err = NetworkDesign::new(
            &tc1_network(),
            PortConfig::single_port(3),
            DesignConfig::default(),
        )
        .unwrap_err();
        assert!(err.contains("3 entries"), "{err}");
    }

    #[test]
    fn multiport_fc_rejected() {
        let mut cfg = PortConfig::single_port(4);
        cfg.layers[3] = LayerPorts {
            in_ports: 1,
            out_ports: 2,
        };
        let err = NetworkDesign::new(&tc1_network(), cfg, DesignConfig::default()).unwrap_err();
        assert!(err.contains("single-input-port"), "{err}");
    }

    #[test]
    fn non_divisor_ports_rejected() {
        let mut cfg = PortConfig::single_port(4);
        cfg.layers[0] = LayerPorts {
            in_ports: 1,
            out_ports: 4, // 6 FMs not divisible by 4
        };
        let err = NetworkDesign::new(&tc1_network(), cfg, DesignConfig::default()).unwrap_err();
        assert!(err.contains("does not divide"), "{err}");
    }

    #[test]
    fn tc1_fits_device_tc2_fits_device() {
        let cost = CostModel::default();
        let dev = dfcnn_fpga::Device::xc7vx485t();
        let d1 = NetworkDesign::new(
            &tc1_network(),
            PortConfig::paper_test_case_1(),
            DesignConfig::default(),
        )
        .unwrap();
        let d2 = NetworkDesign::new(
            &tc2_network(),
            PortConfig::paper_test_case_2(),
            DesignConfig::default(),
        )
        .unwrap();
        let r1 = d1.resources(&cost);
        let r2 = d2.resources(&cost);
        assert!(dev.fits(&r1), "TC1 must fit: {r1:?}");
        assert!(dev.fits(&r2), "TC2 must fit: {r2:?}");
        // Table I shape: TC2 uses more of everything
        assert!(r2.dsp > r1.dsp);
        assert!(r2.lut > r1.lut);
        assert!(r2.ff > r1.ff);
        assert!(r2.bram18 > r1.bram18);
    }

    #[test]
    fn tc2_bottleneck_is_conv1() {
        let d = NetworkDesign::new(
            &tc2_network(),
            PortConfig::paper_test_case_2(),
            DesignConfig::default(),
        )
        .unwrap();
        let (name, cyc) = d.estimated_bottleneck();
        assert_eq!(name, "conv1");
        // 784 windows * II 12 = 9408 cycles ≈ 94 µs
        assert!((9_000..10_000).contains(&cyc), "cycles = {cyc}");
    }

    #[test]
    fn tc1_bottleneck_is_input_stream() {
        let d = NetworkDesign::new(
            &tc1_network(),
            PortConfig::paper_test_case_1(),
            DesignConfig::default(),
        )
        .unwrap();
        let (name, cyc) = d.estimated_bottleneck();
        // 256 pixels at 1/cycle dominates every fully-parallel stage
        assert_eq!(name, "dma-source");
        assert_eq!(cyc, 256);
    }

    #[test]
    fn block_diagram_mentions_all_cores() {
        let d = NetworkDesign::new(
            &tc1_network(),
            PortConfig::paper_test_case_1(),
            DesignConfig::default(),
        )
        .unwrap();
        let diag = d.render_block_diagram();
        for n in ["conv1", "pool1", "conv2", "fc1", "10 classes"] {
            assert!(diag.contains(n), "missing {n} in: {diag}");
        }
    }

    #[test]
    fn fabric_normalization_appends_the_logsoftmax_core() {
        let cfg = DesignConfig {
            fabric_normalization: true,
            ..DesignConfig::default()
        };
        let d = NetworkDesign::new(&tc1_network(), PortConfig::paper_test_case_1(), cfg).unwrap();
        let names: Vec<_> = d.cores().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["conv1", "pool1", "conv2", "fc1", "logsoftmax1"]);
        assert!(d.on_fabric_normalization());
        assert!(!d.host_normalization());
        assert_eq!(d.classes(), 10, "sink still collects 10 values");
        let diag = d.render_block_diagram();
        assert!(diag.contains("logsoftmax1"), "{diag}");
        assert!(diag.contains("LogSoftMax on fabric"), "{diag}");
    }

    #[test]
    fn default_design_keeps_normalization_on_host() {
        let d = NetworkDesign::new(
            &tc1_network(),
            PortConfig::paper_test_case_1(),
            DesignConfig::default(),
        )
        .unwrap();
        assert!(!d.on_fabric_normalization());
        assert!(d.host_normalization());
        assert!(d.render_block_diagram().contains("LogSoftMax on host"));
    }

    #[test]
    fn fabric_hw_forward_matches_reference_logsoftmax() {
        let net = tc1_network();
        let cfg = DesignConfig {
            fabric_normalization: true,
            ..DesignConfig::default()
        };
        let d = NetworkDesign::new(&net, PortConfig::paper_test_case_1(), cfg).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let x = dfcnn_tensor::init::random_volume(&mut rng, net.input_shape(), 0.0, 1.0);
        let hw = d.hw_forward(&x);
        // reference trace ends at the host LogSoftMax output
        let trace = net.forward_trace(&x);
        let reference = trace.last().unwrap();
        assert!(
            hw.max_abs_diff(reference) < 1e-4,
            "diff = {}",
            hw.max_abs_diff(reference)
        );
        let prob_sum: f32 = hw.as_slice().iter().map(|v| v.exp()).sum();
        assert!(
            (prob_sum - 1.0).abs() < 1e-4,
            "probabilities sum to {prob_sum}"
        );
    }

    #[test]
    fn hw_forward_close_to_reference() {
        let net = tc1_network();
        let d = NetworkDesign::new(
            &net,
            PortConfig::paper_test_case_1(),
            DesignConfig::default(),
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let x = dfcnn_tensor::init::random_volume(&mut rng, net.input_shape(), 0.0, 1.0);
        let hw = d.hw_forward(&x);
        // reference trace: compare pre-softmax scores
        let trace = net.forward_trace(&x);
        let reference = &trace[trace.len() - 2];
        assert!(
            hw.max_abs_diff(reference) < 1e-4,
            "diff = {}",
            hw.max_abs_diff(reference)
        );
    }
}
