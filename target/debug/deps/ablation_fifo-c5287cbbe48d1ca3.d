/root/repo/target/debug/deps/ablation_fifo-c5287cbbe48d1ca3.d: crates/bench/src/bin/ablation_fifo.rs

/root/repo/target/debug/deps/ablation_fifo-c5287cbbe48d1ca3: crates/bench/src/bin/ablation_fifo.rs

crates/bench/src/bin/ablation_fifo.rs:
