/root/repo/target/debug/deps/sim_end_to_end-3d30e4e4008e656e.d: crates/core/tests/sim_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libsim_end_to_end-3d30e4e4008e656e.rmeta: crates/core/tests/sim_end_to_end.rs Cargo.toml

crates/core/tests/sim_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
