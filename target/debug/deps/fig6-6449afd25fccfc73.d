/root/repo/target/debug/deps/fig6-6449afd25fccfc73.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-6449afd25fccfc73: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
