/root/repo/target/debug/deps/properties-16deb660be04833c.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-16deb660be04833c.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
