/root/repo/target/release/deps/serde_derive-6bb63886c0d9b2ff.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-6bb63886c0d9b2ff.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
