//! Ablation: **port scaling and design-space exploration** (§IV-A, §IV-C).
//!
//! Part 1 re-creates the decision behind the two paper designs: Test Case
//! 1's first conv/pool layers are fully parallelised because they fit,
//! Test Case 2 is left single-port. We simulate TC1 with the single-port
//! configuration and with the paper's parallel one, showing the
//! mean-time-per-image gain and the resource price.
//!
//! Part 2 runs the automated DSE (the paper's declared future work) over
//! both networks and prints the Pareto front (interval vs DSPs) plus the
//! fastest feasible design.
//!
//! ```text
//! cargo run -p dfcnn-bench --release --bin ablation_ports
//! ```

use dfcnn_bench::{
    mean_time_per_image_us, quick_test_case_1, quick_test_case_2, write_json, TestCase,
};
use dfcnn_core::dse::explore;
use dfcnn_core::graph::{DesignConfig, NetworkDesign, PortConfig};
use dfcnn_fpga::resources::CostModel;
use dfcnn_fpga::Device;
use serde::Serialize;

#[derive(Serialize)]
struct PortPoint {
    config: String,
    mean_us_batch20: f64,
    dsp: u64,
    fits: bool,
}

fn tc1_with(ports: PortConfig, base: &TestCase) -> TestCase {
    TestCase {
        name: base.name,
        spec: base.spec.clone(),
        network: base.network.clone(),
        design: NetworkDesign::new(&base.network, ports, DesignConfig::default()).unwrap(),
        test_accuracy: base.test_accuracy,
        images: base.images.clone(),
    }
}

fn main() {
    let device = Device::xc7vx485t();
    let cost = CostModel::default();
    let tc1 = quick_test_case_1();

    println!("== Part 1: Test Case 1, single-port vs the paper's parallel design ==\n");
    let configs = [
        ("single-port (all layers)", PortConfig::single_port(4)),
        (
            "paper Fig. 4 (conv1+pool1 parallel)",
            PortConfig::paper_test_case_1(),
        ),
    ];
    let mut points = Vec::new();
    for (name, cfg) in configs {
        let case = tc1_with(cfg, &tc1);
        let us = mean_time_per_image_us(&case, 20);
        let res = case.design.resources(&cost);
        println!(
            "{name:<38} {us:>9.3} µs/image   DSP {:>5} ({:.1}%)   fits: {}",
            res.dsp,
            100.0 * res.dsp as f64 / device.capacity.dsp as f64,
            device.fits(&res)
        );
        points.push(PortPoint {
            config: name.to_string(),
            mean_us_batch20: us,
            dsp: res.dsp,
            fits: device.fits(&res),
        });
    }
    let speedup = points[0].mean_us_batch20 / points[1].mean_us_batch20;
    println!("\nparallelisation speedup: {speedup:.2}x (single-port conv1 II=6 vs parallel II=1)");
    assert!(speedup > 1.3, "parallel design must be materially faster");

    println!("\n== Part 2: automated DSE (the paper's future work) ==\n");
    for (label, tc, max_ports) in [
        ("Test Case 1", quick_test_case_1(), 8),
        ("Test Case 2", quick_test_case_2(), 6),
    ] {
        let report = explore(
            &tc.network,
            &DesignConfig::default(),
            &cost,
            &device,
            max_ports,
        );
        let feasible = report.feasible().count();
        println!(
            "{label}: {} configurations evaluated, {} feasible",
            report.points.len(),
            feasible
        );
        println!("  Pareto front (interval cycles/image vs DSP):");
        for p in report.pareto_front() {
            let ports: Vec<String> = p
                .ports
                .layers
                .iter()
                .map(|lp| format!("{}:{}", lp.in_ports, lp.out_ports))
                .collect();
            println!(
                "    interval {:>6} ({:<10}) DSP {:>5}  ports [{}]",
                p.bottleneck.1,
                p.bottleneck.0,
                p.resources.dsp,
                ports.join(", ")
            );
        }
        if let Some(best) = report.best_point() {
            println!(
                "  fastest feasible: {} cycles/image, bottleneck {}\n",
                best.bottleneck.1, best.bottleneck.0
            );
        }
    }
    write_json("ablation_ports", &points);
}
