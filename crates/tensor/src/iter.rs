//! Sliding-window and stream-order iteration shared by the reference CNN
//! and the dataflow simulator.
//!
//! The dataflow accelerator never materialises windows in DRAM: its SST
//! memory system reconstructs them on chip from the single pass of the
//! input stream. The *reference* implementation in `dfcnn-nn`, however, uses
//! these host-side iterators; the simulator's correctness tests then assert
//! that the hardware-style reconstruction produces the same windows in the
//! same order.

use crate::shape::ConvGeometry;
use crate::{Element, Tensor3};

/// Iterator over the top-left coordinates `(y, x)` of every window position,
/// in raster order — the order in which the paper's compute core initiates
/// output pixels (Algorithm 1's `foreach (x, y) ∈ Coordinates`).
///
/// Coordinates are in *padded* space, i.e. they may start at `-pad`.
pub struct WindowPositions {
    geo: ConvGeometry,
    next: usize,
    total: usize,
}

impl WindowPositions {
    /// Create the iterator for the given geometry.
    pub fn new(geo: ConvGeometry) -> Self {
        WindowPositions {
            geo,
            next: 0,
            total: geo.positions(),
        }
    }
}

impl Iterator for WindowPositions {
    type Item = (isize, isize);

    fn next(&mut self) -> Option<(isize, isize)> {
        if self.next >= self.total {
            return None;
        }
        let ow = self.geo.out_w();
        let oy = self.next / ow;
        let ox = self.next % ow;
        self.next += 1;
        Some((
            (oy * self.geo.stride) as isize - self.geo.pad as isize,
            (ox * self.geo.stride) as isize - self.geo.pad as isize,
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.total - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for WindowPositions {}

/// Copy the window anchored at padded coordinates `(y0, x0)` into `out` in
/// stream order (`(dy, dx, c)` with `c` fastest), zero-filling padding.
///
/// `out` must have length `geo.window_volume()`. Reuses the caller's buffer
/// to keep the hot loop allocation-free (per the workspace's HPC guide).
pub fn extract_window<T: Element>(
    input: &Tensor3<T>,
    geo: &ConvGeometry,
    y0: isize,
    x0: isize,
    out: &mut [T],
) {
    assert_eq!(
        out.len(),
        geo.window_volume(),
        "window buffer size mismatch"
    );
    let c = input.shape().c;
    let mut i = 0;
    for dy in 0..geo.kh {
        for dx in 0..geo.kw {
            let (yy, xx) = (y0 + dy as isize, x0 + dx as isize);
            for ch in 0..c {
                out[i] = input.get_padded(yy, xx, ch);
                i += 1;
            }
        }
    }
}

/// Iterator adapter yielding `(y0, x0, window)` for every position, cloning
/// the window into a fresh `Vec` each time. Convenient for tests; hot code
/// should use [`WindowPositions`] + [`extract_window`] with a reused buffer.
pub fn windows<'a, T: Element>(
    input: &'a Tensor3<T>,
    geo: &'a ConvGeometry,
) -> impl Iterator<Item = (isize, isize, Vec<T>)> + 'a {
    WindowPositions::new(*geo).map(move |(y0, x0)| {
        let mut buf = vec![T::zero(); geo.window_volume()];
        extract_window(input, geo, y0, x0, &mut buf);
        (y0, x0, buf)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape3;

    fn seq(shape: Shape3) -> Tensor3<f32> {
        let mut i = -1.0f32;
        Tensor3::from_fn(shape, |_, _, _| {
            i += 1.0;
            i
        })
    }

    #[test]
    fn positions_raster_order_no_pad() {
        let geo = ConvGeometry::new(Shape3::new(4, 4, 1), 3, 3, 1, 0);
        let pos: Vec<_> = WindowPositions::new(geo).collect();
        assert_eq!(pos, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn positions_with_stride_and_pad() {
        let geo = ConvGeometry::new(Shape3::new(4, 4, 1), 2, 2, 2, 1);
        let pos: Vec<_> = WindowPositions::new(geo).collect();
        // padded size 6x6, window 2, stride 2 -> 3x3 positions starting at -1
        assert_eq!(pos.len(), 9);
        assert_eq!(pos[0], (-1, -1));
        assert_eq!(pos[8], (3, 3));
    }

    #[test]
    fn exact_size_hint() {
        let geo = ConvGeometry::new(Shape3::new(6, 6, 2), 5, 5, 1, 0);
        let it = WindowPositions::new(geo);
        assert_eq!(it.len(), 4);
    }

    #[test]
    fn extract_window_interior() {
        let t = seq(Shape3::new(3, 3, 1)); // values 0..9 row-major
        let geo = ConvGeometry::new(t.shape(), 2, 2, 1, 0);
        let mut buf = vec![0.0f32; 4];
        extract_window(&t, &geo, 1, 1, &mut buf);
        assert_eq!(buf, vec![4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn extract_window_zero_pads() {
        let t = seq(Shape3::new(2, 2, 1)); // 0 1 / 2 3
        let geo = ConvGeometry::new(t.shape(), 2, 2, 1, 1);
        let mut buf = vec![9.0f32; 4];
        extract_window(&t, &geo, -1, -1, &mut buf);
        assert_eq!(buf, vec![0.0, 0.0, 0.0, 0.0]);
        extract_window(&t, &geo, 1, 1, &mut buf);
        assert_eq!(buf, vec![3.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn window_channel_order_is_stream_order() {
        let t = seq(Shape3::new(2, 2, 2)); // stream 0..8
        let geo = ConvGeometry::new(t.shape(), 2, 2, 1, 0);
        let mut buf = vec![0.0f32; 8];
        extract_window(&t, &geo, 0, 0, &mut buf);
        // whole volume is one window; must equal the stream itself
        assert_eq!(buf.as_slice(), t.as_slice());
    }

    #[test]
    fn windows_adapter_counts() {
        let t = seq(Shape3::new(5, 5, 1));
        let geo = ConvGeometry::new(t.shape(), 3, 3, 2, 0);
        let all: Vec<_> = windows(&t, &geo).collect();
        assert_eq!(all.len(), 4);
        assert!(all.iter().all(|(_, _, w)| w.len() == 9));
    }
}
