/root/repo/target/release/deps/ablation_ports-53867d6f1091e568.d: crates/bench/src/bin/ablation_ports.rs

/root/repo/target/release/deps/ablation_ports-53867d6f1091e568: crates/bench/src/bin/ablation_ports.rs

crates/bench/src/bin/ablation_ports.rs:
