//! The SST *memory structure*: sliding-window reconstruction with full
//! buffering (§II-B, §IV-A).
//!
//! Per input port, the paper instantiates a chain of *filters* connected by
//! FIFOs — one filter per window row — that (a) forwards the single input
//! stream down the chain so every value is read from memory exactly once,
//! and (b) taps each value into the window register slice at the right
//! moment. The total storage is the minimum for *full buffering*:
//! `((KH-1)·W + KW) · channels-per-port` values per port (`dfcnn_tensor`'s
//! [`ConvGeometry::full_buffer_elems`] divided across ports).
//!
//! [`WindowEngine`] models that structure behaviourally and exactly at the
//! value level:
//!
//! - it accepts **at most one value per port per cycle**, and only while the
//!   line buffer has room (the filter chain's backpressure);
//! - a window becomes *ready* exactly when its bottom-right value has
//!   arrived on every port (the moment the register slice is complete);
//! - storage is freed as the raster-order window sweep moves past it, so
//!   occupancy never exceeds the full-buffering minimum — a property the
//!   test suite asserts, and the precise sense in which the paper claims
//!   minimal on-chip memory use.
//!
//! Feature maps are interleaved over ports round-robin: FM `f` travels on
//! port `f mod IN_PORTS`, and each pixel's FMs appear on a port in
//! increasing `f` order. Algorithm 1's group loop (`for i = 0 to IN_FM step
//! IN_PORTS`) then processes FMs `{g·P, …, g·P+P-1}` — one per port — in
//! group `g`, which is exactly how [`WindowEngine::extract`] orders the
//! window buffer.

use dfcnn_tensor::ConvGeometry;

/// The SST full-buffering bound per port, in values: the minimum line
/// buffer that keeps the window sweep streaming without stalls,
/// `((KH-1+pad)·W + KW) · channels-per-port`. Exported so the static
/// checker ([`crate::check`]) can prove buffer sufficiency against the
/// exact capacity [`WindowEngine::new`] allocates.
///
/// # Panics
/// If `in_ports` does not divide the channel count.
pub fn full_buffer_bound_per_port(geo: &ConvGeometry, in_ports: usize) -> usize {
    assert!(in_ports >= 1, "need at least one input port");
    assert_eq!(
        geo.input.c % in_ports,
        0,
        "IN_PORTS {} must divide IN_FM {}",
        in_ports,
        geo.input.c
    );
    let ch_per_port = geo.input.c / in_ports;
    ((geo.kh - 1 + geo.pad) * geo.input.w + geo.kw) * ch_per_port
}

/// One port's line buffer: a window of the value stream with absolute
/// indexing, so readiness and freeing are O(1) index comparisons.
#[derive(Clone, Debug)]
struct PortBuffer {
    buf: std::collections::VecDeque<f32>,
    /// Absolute stream index of `buf[0]`.
    head: u64,
    /// Total values accepted (absolute stream index of the next value).
    received: u64,
}

impl PortBuffer {
    /// `capacity` is the full-buffering bound; preallocating it makes the
    /// steady-state accept/free path allocation-free.
    fn new(capacity: usize) -> Self {
        PortBuffer {
            buf: std::collections::VecDeque::with_capacity(capacity),
            head: 0,
            received: 0,
        }
    }

    #[inline]
    fn get(&self, abs: u64) -> f32 {
        debug_assert!(
            abs >= self.head && abs < self.received,
            "index out of buffer"
        );
        self.buf[(abs - self.head) as usize]
    }

    fn accept(&mut self, v: f32) {
        self.buf.push_back(v);
        self.received += 1;
    }

    fn free_before(&mut self, abs: u64) {
        while self.head < abs && !self.buf.is_empty() {
            self.buf.pop_front();
            self.head += 1;
        }
    }
}

/// Sliding-window engine for one layer: `IN_PORTS` line buffers plus the
/// window scheduler.
#[derive(Clone, Debug)]
pub struct WindowEngine {
    geo: ConvGeometry,
    in_ports: usize,
    ch_per_port: usize,
    ports: Vec<PortBuffer>,
    /// Per-port line-buffer capacity in values. Defaults to the SST
    /// full-buffering bound; overridable (fault injection) via
    /// [`WindowEngine::with_capacity_per_port`].
    capacity: usize,
    /// Global window counter (monotone across images).
    next_window: u64,
    /// Peak per-port occupancy observed (for the full-buffering assertion).
    max_occupancy: usize,
}

impl WindowEngine {
    /// Create an engine for the given geometry and port count.
    ///
    /// # Panics
    /// If `in_ports` does not divide the channel count (the paper's designs
    /// always interleave a whole number of FMs per port).
    pub fn new(geo: ConvGeometry, in_ports: usize) -> Self {
        // full-buffering bound (see capacity_per_port), preallocated so the
        // line buffers never grow on the steady-state path
        let cap = full_buffer_bound_per_port(&geo, in_ports);
        let ch_per_port = geo.input.c / in_ports;
        WindowEngine {
            geo,
            in_ports,
            ch_per_port,
            ports: (0..in_ports).map(|_| PortBuffer::new(cap)).collect(),
            capacity: cap,
            next_window: 0,
            max_occupancy: 0,
        }
    }

    /// Replace the per-port line-buffer capacity (fault injection: a
    /// capacity below [`full_buffer_bound_per_port`] provably prevents
    /// some window from ever completing, which the static checker flags
    /// and the cycle simulator confirms by deadlocking).
    pub fn with_capacity_per_port(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "line buffer needs at least one slot");
        self.capacity = capacity;
        self
    }

    /// The geometry this engine serves.
    pub fn geometry(&self) -> &ConvGeometry {
        &self.geo
    }

    /// Number of input ports.
    pub fn in_ports(&self) -> usize {
        self.in_ports
    }

    /// Values per port per image.
    pub fn port_stream_len(&self) -> u64 {
        (self.geo.input.h * self.geo.input.w * self.ch_per_port) as u64
    }

    /// Window positions per image.
    pub fn windows_per_image(&self) -> u64 {
        self.geo.positions() as u64
    }

    /// Number of values in one extracted window (`KH · KW · IN_FM`).
    pub fn window_len(&self) -> usize {
        self.geo.window_volume()
    }

    /// Line-buffer capacity per port, in values.
    ///
    /// For the paper's zero-padding designs this is exactly the SST
    /// minimum `((KH-1)·W + KW)` per interleaved channel; with top/bottom
    /// padding the live span can reach one extra padded row per side, so a
    /// `pad·W` margin is added (zero when `pad == 0`). See
    /// [`full_buffer_bound_per_port`]; differs only after a
    /// [`WindowEngine::with_capacity_per_port`] override.
    pub fn capacity_per_port(&self) -> usize {
        self.capacity
    }

    /// Peak per-port occupancy observed so far.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Current line-buffer occupancy of port `p` (values held on chip).
    pub fn occupancy(&self, p: usize) -> usize {
        self.ports[p].buf.len()
    }

    /// Index of the window the engine will deliver next (global).
    pub fn next_window_index(&self) -> u64 {
        self.next_window
    }

    /// Padded-space anchor of global window `w`:
    /// `(image, y0, x0)`.
    fn anchor(&self, w: u64) -> (u64, isize, isize) {
        let wpi = self.windows_per_image();
        let img = w / wpi;
        let idx = (w % wpi) as usize;
        let ow = self.geo.out_w();
        let oy = idx / ow;
        let ox = idx % ow;
        (
            img,
            (oy * self.geo.stride) as isize - self.geo.pad as isize,
            (ox * self.geo.stride) as isize - self.geo.pad as isize,
        )
    }

    /// Absolute per-port index of pixel `(y, x)` channel-slot `slot` in
    /// image `img`.
    #[inline]
    fn abs_index(&self, img: u64, y: usize, x: usize, slot: usize) -> u64 {
        img * self.port_stream_len() + ((y * self.geo.input.w + x) * self.ch_per_port + slot) as u64
    }

    /// Oldest absolute index still needed (per port) by the next window and
    /// all later ones.
    ///
    /// Within a window row, anchors only move right, so the next window's
    /// clamped top-left pixel bounds the rest of its row. With *top
    /// padding*, however, the following window row can re-read image row 0
    /// from column 0 (its anchor clamps to the same row but a smaller
    /// column), so the minimum over all future windows is the smaller of
    /// the next window's anchor and the next row's start anchor.
    fn oldest_needed(&self) -> u64 {
        let (img, y0, x0) = self.anchor(self.next_window);
        let mut oldest = self.abs_index(img, y0.max(0) as usize, x0.max(0) as usize, 0);
        let wpi = self.windows_per_image();
        let idx = (self.next_window % wpi) as usize;
        let oy = idx / self.geo.out_w();
        if oy + 1 < self.geo.out_h() {
            let y0n = ((oy + 1) * self.geo.stride) as isize - self.geo.pad as isize;
            let cand = self.abs_index(img, y0n.max(0) as usize, 0, 0);
            oldest = oldest.min(cand);
        }
        oldest
    }

    /// Newest absolute index the next window requires (per port).
    fn last_needed(&self) -> u64 {
        let (img, y0, x0) = self.anchor(self.next_window);
        let h = self.geo.input.h;
        let w = self.geo.input.w;
        let ly = ((y0 + self.geo.kh as isize - 1).max(0) as usize).min(h - 1);
        let lx = ((x0 + self.geo.kw as isize - 1).max(0) as usize).min(w - 1);
        self.abs_index(img, ly, lx, self.ch_per_port - 1)
    }

    /// Whether port `p` may accept a value this cycle (line buffer has
    /// room under the full-buffering bound).
    pub fn can_accept(&self, p: usize) -> bool {
        self.ports[p].received < self.oldest_needed() + self.capacity_per_port() as u64
    }

    /// Accept one value on port `p` (caller must have checked
    /// [`WindowEngine::can_accept`]).
    ///
    /// Values the remaining window sweep will never read — e.g. pixels
    /// skipped entirely by a stride larger than the window — are discarded
    /// immediately, as the hardware filter does ("changing the condition on
    /// which the values are redirected to the window registers", §IV-A):
    /// this keeps occupancy within the full-buffering bound in every
    /// stride/window combination.
    pub fn accept(&mut self, p: usize, v: f32) {
        assert!(self.can_accept(p), "line buffer full on port {p}");
        let oldest = self.oldest_needed();
        let pb = &mut self.ports[p];
        pb.accept(v);
        pb.free_before(oldest);
        let occ = pb.buf.len();
        self.max_occupancy = self.max_occupancy.max(occ);
    }

    /// Whether the next window is fully buffered on every port.
    pub fn window_ready(&self) -> bool {
        let last = self.last_needed();
        self.ports.iter().all(|pb| pb.received > last)
    }

    /// Copy the next window into `out` and advance the sweep, freeing
    /// storage behind it. Layout: `out[(f·KH + dy)·KW + dx]` for FM `f`
    /// (zero-filled where the window overhangs the padded border).
    ///
    /// # Panics
    /// If the window is not ready or `out` has the wrong length.
    pub fn extract(&mut self, out: &mut [f32]) {
        assert!(self.window_ready(), "window not ready");
        assert_eq!(
            out.len(),
            self.window_len(),
            "window buffer length mismatch"
        );
        let (img, y0, x0) = self.anchor(self.next_window);
        let (h, w) = (self.geo.input.h, self.geo.input.w);
        let in_fm = self.geo.input.c;
        for f in 0..in_fm {
            let p = f % self.in_ports;
            let slot = f / self.in_ports;
            for dy in 0..self.geo.kh {
                for dx in 0..self.geo.kw {
                    let (y, x) = (y0 + dy as isize, x0 + dx as isize);
                    let v = if y < 0 || x < 0 || y >= h as isize || x >= w as isize {
                        0.0
                    } else {
                        self.ports[p].get(self.abs_index(img, y as usize, x as usize, slot))
                    };
                    out[(f * self.geo.kh + dy) * self.geo.kw + dx] = v;
                }
            }
        }
        self.next_window += 1;
        let oldest = self.oldest_needed();
        for pb in &mut self.ports {
            pb.free_before(oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfcnn_tensor::iter::{extract_window, WindowPositions};
    use dfcnn_tensor::{Shape3, Tensor3};

    /// Drive the engine with a whole image in stream order and collect all
    /// windows, asserting single-value-per-"cycle" acceptance interleaved
    /// with extraction whenever ready.
    fn run_engine(geo: ConvGeometry, in_ports: usize, images: &[Tensor3<f32>]) -> Vec<Vec<f32>> {
        let mut eng = WindowEngine::new(geo, in_ports);
        let chpp = geo.input.c / in_ports;
        // per-port input streams in arrival order
        let mut streams: Vec<Vec<f32>> = vec![Vec::new(); in_ports];
        for img in images {
            for y in 0..geo.input.h {
                for x in 0..geo.input.w {
                    for f in 0..geo.input.c {
                        streams[f % in_ports].push(img.get(y, x, f));
                    }
                }
            }
        }
        let mut cursors = vec![0usize; in_ports];
        let mut windows = Vec::new();
        let total_windows = geo.positions() * images.len();
        let mut guard = 0;
        while windows.len() < total_windows {
            guard += 1;
            assert!(guard < 10_000_000, "engine made no progress");
            for p in 0..in_ports {
                if cursors[p] < streams[p].len() && eng.can_accept(p) {
                    eng.accept(p, streams[p][cursors[p]]);
                    cursors[p] += 1;
                }
            }
            while eng.window_ready() && windows.len() < total_windows {
                let mut buf = vec![0.0f32; eng.window_len()];
                eng.extract(&mut buf);
                windows.push(buf);
            }
        }
        // occupancy must respect the full-buffering bound
        assert!(
            eng.max_occupancy() <= eng.capacity_per_port(),
            "occupancy {} exceeded full-buffer bound {} (chpp={})",
            eng.max_occupancy(),
            eng.capacity_per_port(),
            chpp
        );
        windows
    }

    /// Reference windows via the host-side extractor, reordered to the
    /// engine's `(f, dy, dx)` layout.
    fn reference_windows(geo: ConvGeometry, img: &Tensor3<f32>) -> Vec<Vec<f32>> {
        let mut res = Vec::new();
        let mut host = vec![0.0f32; geo.window_volume()];
        for (y0, x0) in WindowPositions::new(geo) {
            extract_window(img, &geo, y0, x0, &mut host);
            // host layout: (dy, dx, c); engine layout: (f, dy, dx)
            let mut eng = vec![0.0f32; host.len()];
            for dy in 0..geo.kh {
                for dx in 0..geo.kw {
                    for c in 0..geo.input.c {
                        eng[(c * geo.kh + dy) * geo.kw + dx] =
                            host[(dy * geo.kw + dx) * geo.input.c + c];
                    }
                }
            }
            res.push(eng);
        }
        res
    }

    fn ramp(shape: Shape3) -> Tensor3<f32> {
        let mut i = 0.0f32;
        Tensor3::from_fn(shape, |_, _, _| {
            i += 1.0;
            i
        })
    }

    #[test]
    fn single_channel_windows_match_reference() {
        let geo = ConvGeometry::new(Shape3::new(6, 6, 1), 3, 3, 1, 0);
        let img = ramp(geo.input);
        assert_eq!(
            run_engine(geo, 1, std::slice::from_ref(&img)),
            reference_windows(geo, &img)
        );
    }

    #[test]
    fn multichannel_single_port_matches() {
        let geo = ConvGeometry::new(Shape3::new(5, 4, 3), 2, 2, 1, 0);
        let img = ramp(geo.input);
        assert_eq!(
            run_engine(geo, 1, std::slice::from_ref(&img)),
            reference_windows(geo, &img)
        );
    }

    #[test]
    fn multichannel_multiport_matches() {
        // 6 channels over 3 ports: FM f on port f % 3
        let geo = ConvGeometry::new(Shape3::new(6, 6, 6), 3, 3, 1, 0);
        let img = ramp(geo.input);
        assert_eq!(
            run_engine(geo, 3, std::slice::from_ref(&img)),
            reference_windows(geo, &img)
        );
    }

    #[test]
    fn strided_windows_match() {
        let geo = ConvGeometry::new(Shape3::new(8, 8, 2), 2, 2, 2, 0);
        let img = ramp(geo.input);
        assert_eq!(
            run_engine(geo, 2, std::slice::from_ref(&img)),
            reference_windows(geo, &img)
        );
    }

    #[test]
    fn padded_windows_match() {
        let geo = ConvGeometry::new(Shape3::new(5, 5, 1), 3, 3, 1, 1);
        let img = ramp(geo.input);
        assert_eq!(
            run_engine(geo, 1, std::slice::from_ref(&img)),
            reference_windows(geo, &img)
        );
    }

    #[test]
    fn back_to_back_images_stream_cleanly() {
        let geo = ConvGeometry::new(Shape3::new(4, 4, 2), 2, 2, 1, 0);
        let a = ramp(geo.input);
        let b = a.map(|v| -v);
        let got = run_engine(geo, 1, &[a.clone(), b.clone()]);
        let mut expect = reference_windows(geo, &a);
        expect.extend(reference_windows(geo, &b));
        assert_eq!(got, expect);
    }

    #[test]
    fn usps_conv1_geometry_runs() {
        let geo = ConvGeometry::new(Shape3::new(16, 16, 1), 5, 5, 1, 0);
        let img = ramp(geo.input);
        let w = run_engine(geo, 1, std::slice::from_ref(&img));
        assert_eq!(w.len(), 144);
        assert_eq!(w, reference_windows(geo, &img));
    }

    #[test]
    fn capacity_is_full_buffer_formula() {
        let geo = ConvGeometry::new(Shape3::new(32, 32, 3), 5, 5, 1, 0);
        let eng = WindowEngine::new(geo, 1);
        assert_eq!(eng.capacity_per_port(), (4 * 32 + 5) * 3);
        let eng3 = WindowEngine::new(geo, 3);
        assert_eq!(eng3.capacity_per_port(), 4 * 32 + 5);
    }

    #[test]
    fn accept_blocks_at_capacity() {
        let geo = ConvGeometry::new(Shape3::new(4, 4, 1), 2, 2, 1, 0);
        let mut eng = WindowEngine::new(geo, 1);
        let cap = eng.capacity_per_port(); // 4 + 2 = 6
        for i in 0..cap {
            assert!(eng.can_accept(0), "should accept value {i}");
            eng.accept(0, i as f32);
        }
        assert!(!eng.can_accept(0), "must stall at full buffer");
        // consuming one window frees room
        assert!(eng.window_ready());
        let mut buf = vec![0.0; 4];
        eng.extract(&mut buf);
        assert!(eng.can_accept(0));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn non_dividing_ports_rejected() {
        let geo = ConvGeometry::new(Shape3::new(4, 4, 3), 2, 2, 1, 0);
        WindowEngine::new(geo, 2);
    }

    #[test]
    fn bound_helper_matches_engine_capacity() {
        let geo = ConvGeometry::new(Shape3::new(16, 16, 6), 5, 5, 1, 0);
        for ports in [1, 2, 3, 6] {
            assert_eq!(
                full_buffer_bound_per_port(&geo, ports),
                WindowEngine::new(geo, ports).capacity_per_port()
            );
        }
    }

    #[test]
    fn undersized_capacity_blocks_the_first_window_forever() {
        let geo = ConvGeometry::new(Shape3::new(4, 4, 1), 2, 2, 1, 0);
        // the full-buffering bound is 6; one value short of it
        let mut eng = WindowEngine::new(geo, 1).with_capacity_per_port(5);
        let mut fed = 0;
        while eng.can_accept(0) {
            eng.accept(0, fed as f32);
            fed += 1;
        }
        assert_eq!(fed, 5, "acceptance stops at the overridden capacity");
        assert!(
            !eng.window_ready(),
            "an undersized line buffer can never complete a window — \
             the statically-provable deadlock"
        );
    }
}
