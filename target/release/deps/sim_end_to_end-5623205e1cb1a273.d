/root/repo/target/release/deps/sim_end_to_end-5623205e1cb1a273.d: crates/core/tests/sim_end_to_end.rs

/root/repo/target/release/deps/sim_end_to_end-5623205e1cb1a273: crates/core/tests/sim_end_to_end.rs

crates/core/tests/sim_end_to_end.rs:
