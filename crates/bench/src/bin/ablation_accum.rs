//! Ablation: **FC accumulator interleaving** (§IV-B).
//!
//! The paper: a single f32 accumulator has an 11-cycle loop-carried
//! dependency, making a unit-II pipeline infeasible; interleaving more
//! accumulators than the addition latency restores II = 1 at extra
//! resource cost. This ablation sweeps the bank count for the two FC
//! layer sizes of Test Case 2 (900→72 and 72→10) and for Test Case 1's
//! 64→10, reporting the analytical cycle counts, the simulated FC stage
//! interval, and the register cost. It also shows the fixed-point
//! datapath, where the paper notes the issue "does not arise".
//!
//! ```text
//! cargo run -p dfcnn-bench --release --bin ablation_accum
//! ```

use dfcnn_bench::write_json;
use dfcnn_hls::accum::InterleavedAccumulator;
use dfcnn_hls::latency::OpLatency;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    banks: usize,
    loop_ii: u32,
    cycles_900_inputs: u64,
    cycles_64_inputs: u64,
    extra_registers_72_outputs: usize,
}

fn main() {
    let ops = OpLatency::f32_virtex7();
    println!(
        "== Ablation: interleaved accumulators (f32 add latency = {} cycles) ==\n",
        ops.add
    );
    println!(
        "{:>6} {:>8} {:>16} {:>16} {:>22}",
        "banks", "loop II", "cycles (I=900)", "cycles (I=64)", "acc. regs (J=72)"
    );
    let mut points = Vec::new();
    for banks in [1usize, 2, 3, 4, 6, 8, 11, 16, 22] {
        let acc = InterleavedAccumulator::new(banks);
        let p = Point {
            banks,
            loop_ii: acc.loop_ii(&ops),
            cycles_900_inputs: acc.total_cycles(900, &ops),
            cycles_64_inputs: acc.total_cycles(64, &ops),
            extra_registers_72_outputs: banks * 72,
        };
        println!(
            "{:>6} {:>8} {:>16} {:>16} {:>22}",
            p.banks,
            p.loop_ii,
            p.cycles_900_inputs,
            p.cycles_64_inputs,
            p.extra_registers_72_outputs
        );
        points.push(p);
    }

    // headline claims
    let one = &points[0];
    let eleven = points.iter().find(|p| p.banks == 11).unwrap();
    println!(
        "\n900-input FC: 1 bank = {} cycles, 11 banks = {} cycles ({:.1}x faster)",
        one.cycles_900_inputs,
        eleven.cycles_900_inputs,
        one.cycles_900_inputs as f64 / eleven.cycles_900_inputs as f64
    );
    assert!(eleven.loop_ii == 1, "banks >= add latency must reach II=1");
    assert!(one.cycles_900_inputs > 10 * eleven.cycles_900_inputs / 2);

    let fx = OpLatency::fixed_point();
    let fx_acc = InterleavedAccumulator::new(1);
    println!(
        "fixed-point datapath: single accumulator already has II = {} (paper: \
         \"does not arise when using integer values\")",
        fx_acc.loop_ii(&fx)
    );
    assert_eq!(fx_acc.loop_ii(&fx), 1);
    write_json("ablation_accum", &points);
}
