/root/repo/target/debug/deps/ablation_fifo-53cf466ed5d2742e.d: crates/bench/src/bin/ablation_fifo.rs Cargo.toml

/root/repo/target/debug/deps/libablation_fifo-53cf466ed5d2742e.rmeta: crates/bench/src/bin/ablation_fifo.rs Cargo.toml

crates/bench/src/bin/ablation_fifo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
