//! Q-format fixed-point scalar.
//!
//! The paper implements both test cases in single-precision floating point
//! but notes (§IV-B) that the 11-cycle floating-point accumulation latency
//! "does not arise when using integer values, and will be subject to further
//! study". [`Fixed`] is that further study's substrate: a signed 32-bit
//! value with a compile-time fractional bit count, providing saturating
//! arithmetic as a hardware fixed-point datapath would.

use crate::Element;
use serde::{Deserialize, Serialize};

/// Signed fixed-point number with `FRAC` fractional bits in an `i32`
/// container (Q`31-FRAC`.`FRAC` format).
///
/// Multiplication widens to `i64` before rescaling, like a DSP48 slice does;
/// all operations saturate instead of wrapping, matching common FPGA
/// datapath practice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fixed<const FRAC: u32 = 16>(i32);

// Serialised as the raw bit pattern (a bare integer, like serde's derived
// newtype representation). Written by hand because the type is generic.
impl<const FRAC: u32> Serialize for Fixed<FRAC> {
    fn to_value(&self) -> serde::Value {
        self.0.to_value()
    }
}

impl<const FRAC: u32> Deserialize for Fixed<FRAC> {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        i32::from_value(v).map(Fixed)
    }
}

impl<const FRAC: u32> Fixed<FRAC> {
    /// Smallest representable value.
    pub const MIN: Self = Fixed(i32::MIN);
    /// Largest representable value.
    pub const MAX: Self = Fixed(i32::MAX);
    /// The scale factor `2^FRAC`.
    pub const SCALE: f64 = (1u64 << FRAC) as f64;

    /// Construct from the raw fixed-point bit pattern.
    #[inline]
    pub const fn from_raw(raw: i32) -> Self {
        Fixed(raw)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn raw(self) -> i32 {
        self.0
    }

    /// Convert from `f64`, saturating at the representable range.
    pub fn from_f64(v: f64) -> Self {
        Fixed(<i32 as crate::cast::SatNarrow>::sat_round_f64(
            v * Self::SCALE,
        ))
    }

    /// Convert to `f64` exactly.
    #[inline]
    pub fn to_f64(self) -> f64 {
        f64::from(self.0) / Self::SCALE
    }

    /// Quantisation step (the value of one LSB).
    #[inline]
    pub fn epsilon() -> f64 {
        1.0 / Self::SCALE
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Self) -> Self {
        Fixed(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Fixed(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication with full-width intermediate, as a DSP
    /// slice computes it (widen, multiply, shift back, saturate).
    #[inline]
    pub fn saturating_mul(self, rhs: Self) -> Self {
        let wide = (i64::from(self.0) * i64::from(rhs.0)) >> FRAC;
        Fixed(<i32 as crate::cast::SatNarrow>::sat_i64(wide))
    }
}

impl<const FRAC: u32> core::ops::Add for Fixed<FRAC> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
}

impl<const FRAC: u32> core::ops::Sub for Fixed<FRAC> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
}

impl<const FRAC: u32> core::ops::Mul for Fixed<FRAC> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.saturating_mul(rhs)
    }
}

impl<const FRAC: u32> core::ops::Neg for Fixed<FRAC> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Fixed(self.0.saturating_neg())
    }
}

impl<const FRAC: u32> Element for Fixed<FRAC> {
    #[inline]
    fn zero() -> Self {
        Fixed(0)
    }
    #[inline]
    fn one() -> Self {
        Fixed(1i32 << FRAC)
    }
    #[inline]
    fn from_f32(v: f32) -> Self {
        Self::from_f64(f64::from(v))
    }
    #[inline]
    fn to_f32(self) -> f32 {
        crate::cast::f64_to_f32(self.to_f64())
    }
}

impl<const FRAC: u32> core::fmt::Display for Fixed<FRAC> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

/// The default fixed-point format used by the fixed-point design study:
/// Q15.16, a common choice for CNN inference on Virtex-7-class DSP slices.
pub type Q16 = Fixed<16>;

/// Default fractional bit count for the executed fixed-point datapath
/// (Q7.8 in an `i16`). Chosen by the accuracy-vs-FRAC sweep in
/// `EXPERIMENTS.md`: on both paper test cases it matches the f32
/// classification accuracy while halving multiplier width.
pub const DEFAULT_FRAC: u32 = 8;

// Narrow-storage fixed-point scalars for the *executed* datapath.
//
// [`Fixed`] above keeps 32-bit storage and exists for costing studies; the
// engines execute [`Fixed16`]/[`Fixed8`], whose narrow products
// (16×16→32, 8×8→16) accumulate exactly in an `i64` — the software model
// of a DSP48 slice's 48-bit accumulator. Because integer addition is
// associative, any summation order (tree, interleaved banks, SIMD lanes)
// produces the same bits, which is what lets all three engines agree
// bit-for-bit in fixed point.
macro_rules! narrow_fixed {
    ($(#[$doc:meta])* $name:ident, $store:ty, $default_frac:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name<const FRAC: u32 = $default_frac>(pub(crate) $store);

        impl<const FRAC: u32> Serialize for $name<FRAC> {
            fn to_value(&self) -> serde::Value {
                i32::from(self.0).to_value()
            }
        }

        impl<const FRAC: u32> Deserialize for $name<FRAC> {
            fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
                i32::from_value(v).map(|raw| {
                    $name(<$store as crate::cast::SatNarrow>::sat_i32(raw))
                })
            }
        }

        impl<const FRAC: u32> $name<FRAC> {
            /// Smallest representable value.
            pub const MIN: Self = $name(<$store>::MIN);
            /// Largest representable value.
            pub const MAX: Self = $name(<$store>::MAX);
            /// The scale factor `2^FRAC`.
            pub const SCALE: f64 = (1u64 << FRAC) as f64;

            /// Construct from the raw fixed-point bit pattern.
            #[inline]
            pub const fn from_raw(raw: $store) -> Self {
                $name(raw)
            }

            /// The raw bit pattern.
            #[inline]
            pub const fn raw(self) -> $store {
                self.0
            }

            /// Convert from `f64`, saturating at the representable range.
            pub fn from_f64(v: f64) -> Self {
                $name(<$store as crate::cast::SatNarrow>::sat_round_f64(v * Self::SCALE))
            }

            /// Convert to `f64` exactly.
            #[inline]
            pub fn to_f64(self) -> f64 {
                f64::from(self.0) / Self::SCALE
            }

            /// Quantisation step (the value of one LSB).
            #[inline]
            pub fn epsilon() -> f64 {
                1.0 / Self::SCALE
            }

            /// Saturating addition.
            #[inline]
            pub fn saturating_add(self, rhs: Self) -> Self {
                $name(self.0.saturating_add(rhs.0))
            }

            /// Saturating subtraction.
            #[inline]
            pub fn saturating_sub(self, rhs: Self) -> Self {
                $name(self.0.saturating_sub(rhs.0))
            }

            /// Saturating multiplication with full-width intermediate
            /// (widen, multiply, arithmetic shift back, saturate — the
            /// truncation rounds toward negative infinity, like the
            /// hardware rescale).
            #[inline]
            pub fn saturating_mul(self, rhs: Self) -> Self {
                let wide = (i32::from(self.0) * i32::from(rhs.0)) >> FRAC;
                $name(<$store as crate::cast::SatNarrow>::sat_i32(wide))
            }

            /// Lane-chunked MAC with `i64` lane accumulators: `i32`
            /// products per chunk, widened and added to 32 independent
            /// sums. The `chunks_exact` structure is what lets LLVM drop
            /// the bounds checks and vectorize; exact in any order, so
            /// bit-identical to the sequential loop.
            #[cfg(not(feature = "portable-simd"))]
            #[inline]
            fn dot_i64_lanes(a: &[Self], b: &[Self]) -> i64 {
                const LANES: usize = 32;
                let n = a.len().min(b.len());
                let (a, b) = (&a[..n], &b[..n]);
                let mut lanes = [0i64; LANES];
                let mut ca = a.chunks_exact(LANES);
                let mut cb = b.chunks_exact(LANES);
                for (ka, kb) in ca.by_ref().zip(cb.by_ref()) {
                    let mut prod = [0i32; LANES];
                    for l in 0..LANES {
                        prod[l] = i32::from(ka[l].0) * i32::from(kb[l].0);
                    }
                    for l in 0..LANES {
                        lanes[l] += i64::from(prod[l]);
                    }
                }
                let mut acc: i64 = lanes.iter().sum();
                for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
                    acc += i64::from(i32::from(x.0) * i32::from(y.0));
                }
                acc
            }

            /// Lane-chunked MAC with `i32` lane accumulators — only exact
            /// when products fit in an `i16` (8-bit storage), which bounds
            /// each lane's partial sum by `2^16 · 2^14 < i32::MAX` per
            /// block; blocks spill into the `i64` total. `dot_acc` only
            /// selects this kernel for 1-byte storage.
            #[cfg(not(feature = "portable-simd"))]
            #[inline]
            fn dot_i32_lanes(a: &[Self], b: &[Self]) -> i64 {
                const LANES: usize = 16;
                const BLOCK: usize = LANES * (1 << 16);
                // Exactness argument (doc above) requires 1-byte storage:
                // wider products would overflow the i32 lane accumulators.
                debug_assert!(core::mem::size_of::<$store>() == 1);
                let n = a.len().min(b.len());
                let (mut a, mut b) = (&a[..n], &b[..n]);
                let mut acc = 0i64;
                while !a.is_empty() {
                    let take = a.len().min(BLOCK);
                    let (ha, ta) = a.split_at(take);
                    let (hb, tb) = b.split_at(take);
                    let mut lanes = [0i32; LANES];
                    let mut ca = ha.chunks_exact(LANES);
                    let mut cb = hb.chunks_exact(LANES);
                    for (ka, kb) in ca.by_ref().zip(cb.by_ref()) {
                        for l in 0..LANES {
                            lanes[l] += i32::from(ka[l].0) * i32::from(kb[l].0);
                        }
                    }
                    acc += lanes.iter().map(|&v| i64::from(v)).sum::<i64>();
                    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
                        acc += i64::from(i32::from(x.0) * i32::from(y.0));
                    }
                    a = ta;
                    b = tb;
                }
                acc
            }
        }

        impl<const FRAC: u32> core::ops::Add for $name<FRAC> {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                self.saturating_add(rhs)
            }
        }

        impl<const FRAC: u32> core::ops::Sub for $name<FRAC> {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                self.saturating_sub(rhs)
            }
        }

        impl<const FRAC: u32> core::ops::Mul for $name<FRAC> {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                self.saturating_mul(rhs)
            }
        }

        impl<const FRAC: u32> core::ops::Neg for $name<FRAC> {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                $name(self.0.saturating_neg())
            }
        }

        impl<const FRAC: u32> Element for $name<FRAC> {
            #[inline]
            fn zero() -> Self {
                $name(0)
            }
            #[inline]
            fn one() -> Self {
                $name(1 << FRAC)
            }
            #[inline]
            fn from_f32(v: f32) -> Self {
                Self::from_f64(f64::from(v))
            }
            #[inline]
            fn to_f32(self) -> f32 {
                crate::cast::f64_to_f32(self.to_f64())
            }
        }

        impl<const FRAC: u32> crate::Numeric for $name<FRAC> {
            type Acc = i64;
            const EXACT_SUM: bool = true;

            #[inline]
            fn min_value() -> Self {
                Self::MIN
            }

            #[inline]
            fn max_hw(self, other: Self) -> Self {
                if self >= other {
                    self
                } else {
                    other
                }
            }

            /// Lift a value to the product scale `2^(2·FRAC)` so it can be
            /// added to raw products (how the bias enters a MAC chain).
            #[inline]
            fn widen(self) -> i64 {
                debug_assert!(FRAC < 32, "widen would shift past the i64 product scale");
                i64::from(self.0) << FRAC
            }

            /// Full-width product at scale `2^(2·FRAC)`; narrow×narrow
            /// cannot overflow the `i32` intermediate.
            #[inline]
            fn mul_full(self, rhs: Self) -> i64 {
                i64::from(i32::from(self.0) * i32::from(rhs.0))
            }

            /// Rescale an accumulator back to `2^FRAC` (arithmetic shift:
            /// truncation toward −∞, matching `saturating_mul`) and
            /// saturate into storage.
            #[inline]
            fn narrow(acc: i64) -> Self {
                debug_assert!(FRAC < 63, "narrow would shift the accumulator away");
                $name(<$store as crate::cast::SatNarrow>::sat_i64(acc >> FRAC))
            }

            #[cfg(not(feature = "portable-simd"))]
            fn dot_acc(a: &[Self], b: &[Self]) -> i64 {
                // Integer sums are exact, so any lane discipline equals the
                // scalar loop bit-for-bit; the two kernels below only pick
                // the cheapest *accumulator width* per storage width. The
                // branch is on a compile-time constant.
                if core::mem::size_of::<$store>() == 1 {
                    Self::dot_i32_lanes(a, b)
                } else {
                    Self::dot_i64_lanes(a, b)
                }
            }

            #[cfg(feature = "portable-simd")]
            fn dot_acc(a: &[Self], b: &[Self]) -> i64 {
                // Explicit `std::simd` lanes (nightly, behind the
                // `portable-simd` feature): `i32` products widened into
                // `i64` lane accumulators. Exact for both storage widths,
                // so bit-identical to the chunked and scalar paths.
                use core::simd::prelude::*;
                const LANES: usize = 16;
                let n = a.len().min(b.len());
                let chunks = n / LANES;
                let mut lanes = Simd::<i64, LANES>::splat(0);
                for c in 0..chunks {
                    let base = c * LANES;
                    let va = Simd::<i32, LANES>::from_array(core::array::from_fn(|l| {
                        i32::from(a[base + l].0)
                    }));
                    let vb = Simd::<i32, LANES>::from_array(core::array::from_fn(|l| {
                        i32::from(b[base + l].0)
                    }));
                    lanes += (va * vb).cast::<i64>();
                }
                let mut acc = lanes.reduce_sum();
                for i in chunks * LANES..n {
                    acc += i64::from(i32::from(a[i].0) * i32::from(b[i].0));
                }
                acc
            }

            fn dot_acc_scalar(a: &[Self], b: &[Self]) -> i64 {
                let n = a.len().min(b.len());
                let mut acc = 0i64;
                for i in 0..n {
                    acc += i64::from(i32::from(a[i].0) * i32::from(b[i].0));
                }
                acc
            }
        }

        impl<const FRAC: u32> core::fmt::Display for $name<FRAC> {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "{}", self.to_f64())
            }
        }
    };
}

narrow_fixed!(
    /// Signed fixed-point number with `FRAC` fractional bits in an `i16`
    /// container (Q`15-FRAC`.`FRAC`): the executed datapath's 16-bit
    /// storage format. Products widen to `i32` (one DSP48 multiply) and
    /// accumulate exactly in `i64`.
    Fixed16,
    i16,
    8
);

narrow_fixed!(
    /// Signed fixed-point number with `FRAC` fractional bits in an `i8`
    /// container (Q`7-FRAC`.`FRAC`): the executed datapath's 8-bit
    /// storage format, for the aggressive end of the precision sweep.
    Fixed8,
    i8,
    4
);

/// A runtime-selectable numeric format for the executed datapath.
///
/// `DesignConfig::numeric` carries one of these; consumers dispatch to a
/// monomorphized kernel with [`with_numeric!`](crate::with_numeric). Only
/// the combinations listed in [`NumericSpec::is_supported`] have compiled
/// kernels — `NetworkDesign::new` rejects the rest up front.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum NumericSpec {
    /// IEEE single precision — the paper's published configuration.
    #[default]
    F32,
    /// [`Fixed16`] with the given fractional bit count.
    Fixed16 { frac: u32 },
    /// [`Fixed8`] with the given fractional bit count.
    Fixed8 { frac: u32 },
}

impl NumericSpec {
    /// The default fixed-point execution format (`Fixed16<DEFAULT_FRAC>`).
    pub fn default_fixed() -> Self {
        NumericSpec::Fixed16 { frac: DEFAULT_FRAC }
    }

    /// Whether a monomorphized kernel exists for this format. The set is
    /// deliberately small (each entry is a full copy of every kernel):
    /// f32, Fixed16 with FRAC ∈ {6, 8, 10, 12}, Fixed8 with FRAC ∈ {4, 6}.
    pub fn is_supported(self) -> bool {
        match self {
            NumericSpec::F32 => true,
            NumericSpec::Fixed16 { frac } => matches!(frac, 6 | 8 | 10 | 12),
            NumericSpec::Fixed8 { frac } => matches!(frac, 4 | 6),
        }
    }

    /// Storage width in bits.
    pub fn storage_bits(self) -> u32 {
        match self {
            NumericSpec::F32 => 32,
            NumericSpec::Fixed16 { .. } => 16,
            NumericSpec::Fixed8 { .. } => 8,
        }
    }

    /// Fractional bit count, if fixed point.
    pub fn frac(self) -> Option<u32> {
        match self {
            NumericSpec::F32 => None,
            NumericSpec::Fixed16 { frac } | NumericSpec::Fixed8 { frac } => Some(frac),
        }
    }

    /// Whether this is a fixed-point format.
    pub fn is_fixed(self) -> bool {
        !matches!(self, NumericSpec::F32)
    }

    /// Quantisation step (one LSB) — 0 for f32.
    pub fn epsilon(self) -> f64 {
        match self.frac() {
            Some(frac) => 1.0 / (1u64 << frac) as f64,
            None => 0.0,
        }
    }

    /// A short human-readable label, e.g. `f32`, `q16f8`, `q8f4`.
    pub fn label(self) -> String {
        match self {
            NumericSpec::F32 => "f32".into(),
            NumericSpec::Fixed16 { frac } => format!("q16f{frac}"),
            NumericSpec::Fixed8 { frac } => format!("q8f{frac}"),
        }
    }

    /// Every supported spec, in label order (f32 first, then 16-bit, then
    /// 8-bit formats by rising FRAC).
    pub fn supported() -> Vec<NumericSpec> {
        let mut all = vec![NumericSpec::F32];
        all.extend([6, 8, 10, 12].map(|frac| NumericSpec::Fixed16 { frac }));
        all.extend([4, 6].map(|frac| NumericSpec::Fixed8 { frac }));
        all
    }

    /// Labels of every supported spec (for error messages and CLIs).
    pub fn supported_labels() -> Vec<String> {
        Self::supported().into_iter().map(Self::label).collect()
    }

    /// Parse a [`NumericSpec::label`]-format string (`f32`, `q16f8`, …).
    pub fn parse(s: &str) -> Result<Self, String> {
        let spec = if s == "f32" {
            NumericSpec::F32
        } else if let Some(f) = s.strip_prefix("q16f") {
            NumericSpec::Fixed16 {
                frac: f.parse().map_err(|_| format!("bad FRAC in {s:?}"))?,
            }
        } else if let Some(f) = s.strip_prefix("q8f") {
            NumericSpec::Fixed8 {
                frac: f.parse().map_err(|_| format!("bad FRAC in {s:?}"))?,
            }
        } else {
            return Err(format!(
                "unknown numeric spec {s:?} (expected one of {})",
                Self::supported_labels().join(", ")
            ));
        };
        if !spec.is_supported() {
            return Err(format!(
                "no kernel monomorphization for {s:?} (supported: {})",
                Self::supported_labels().join(", ")
            ));
        }
        Ok(spec)
    }
}

/// Monomorphize a block of code over a [`NumericSpec`].
///
/// `with_numeric!(spec, E => expr)` binds the type alias `E` to the
/// concrete element type selected by `spec` and evaluates `expr`. Panics
/// on an unsupported spec — callers go through `NetworkDesign::new`, which
/// validates [`NumericSpec::is_supported`] first.
///
/// ```
/// use dfcnn_tensor::{with_numeric, fixed::NumericSpec, Element};
/// let spec = NumericSpec::default_fixed();
/// let y = with_numeric!(spec, E => E::from_f32(0.5).to_f32());
/// assert_eq!(y, 0.5);
/// ```
#[macro_export]
macro_rules! with_numeric {
    ($spec:expr, $E:ident => $body:expr) => {{
        match $spec {
            $crate::fixed::NumericSpec::F32 => {
                type $E = f32;
                $body
            }
            $crate::fixed::NumericSpec::Fixed16 { frac: 6 } => {
                type $E = $crate::fixed::Fixed16<6>;
                $body
            }
            $crate::fixed::NumericSpec::Fixed16 { frac: 8 } => {
                type $E = $crate::fixed::Fixed16<8>;
                $body
            }
            $crate::fixed::NumericSpec::Fixed16 { frac: 10 } => {
                type $E = $crate::fixed::Fixed16<10>;
                $body
            }
            $crate::fixed::NumericSpec::Fixed16 { frac: 12 } => {
                type $E = $crate::fixed::Fixed16<12>;
                $body
            }
            $crate::fixed::NumericSpec::Fixed8 { frac: 4 } => {
                type $E = $crate::fixed::Fixed8<4>;
                $body
            }
            $crate::fixed::NumericSpec::Fixed8 { frac: 6 } => {
                type $E = $crate::fixed::Fixed8<6>;
                $body
            }
            other => panic!(
                "no kernel monomorphization for numeric spec {:?} \
                 (see NumericSpec::is_supported)",
                other
            ),
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_values() {
        for v in [-2.5f64, -1.0, 0.0, 0.5, 1.0, 3.25] {
            assert_eq!(Q16::from_f64(v).to_f64(), v);
        }
    }

    #[test]
    fn one_is_scale() {
        assert_eq!(<Q16 as Element>::one().raw(), 1 << 16);
        assert_eq!(<Q16 as Element>::one().to_f64(), 1.0);
    }

    #[test]
    fn add_sub_mul() {
        let a = Q16::from_f64(1.5);
        let b = Q16::from_f64(2.0);
        assert_eq!((a + b).to_f64(), 3.5);
        assert_eq!((a - b).to_f64(), -0.5);
        assert_eq!((a * b).to_f64(), 3.0);
    }

    #[test]
    fn mul_truncates_toward_neg_infinity_like_hw() {
        // (1/65536) * (1/65536) underflows to zero in Q15.16
        let eps = Q16::from_raw(1);
        assert_eq!((eps * eps).raw(), 0);
    }

    #[test]
    fn saturation_at_extremes() {
        let big = Q16::from_f64(30000.0);
        assert_eq!(big + big, Q16::MAX);
        assert_eq!(big * big, Q16::MAX);
        let small = Q16::from_f64(-30000.0);
        assert_eq!(small + small, Q16::MIN);
        assert_eq!(Q16::from_f64(1e12), Q16::MAX);
        assert_eq!(Q16::from_f64(-1e12), Q16::MIN);
    }

    #[test]
    fn quantisation_error_bounded_by_half_lsb() {
        for i in 0..100 {
            let v = (i as f64) * 0.0137 - 0.7;
            let q = Q16::from_f64(v).to_f64();
            assert!((q - v).abs() <= Q16::epsilon() / 2.0 + 1e-12, "v={v} q={q}");
        }
    }

    #[test]
    fn element_impl_via_f32() {
        let x = <Q16 as Element>::from_f32(0.25);
        assert_eq!(x.to_f32(), 0.25);
        assert_eq!(<Q16 as Element>::zero().to_f32(), 0.0);
    }

    #[test]
    fn neg_saturates_min() {
        assert_eq!((-Q16::MIN).raw(), i32::MAX);
        assert_eq!((-Q16::from_f64(1.0)).to_f64(), -1.0);
    }

    mod narrow {
        use super::super::*;
        use crate::Numeric;

        type Q = Fixed16<8>;
        type B = Fixed8<4>;

        #[test]
        fn roundtrip_exact_values() {
            for v in [-2.5f64, -1.0, 0.0, 0.5, 1.0, 3.25] {
                assert_eq!(Q::from_f64(v).to_f64(), v);
                assert_eq!(B::from_f64(v).to_f64(), v);
            }
        }

        #[test]
        fn one_is_scale() {
            assert_eq!(<Q as Element>::one().raw(), 1 << 8);
            assert_eq!(<B as Element>::one().raw(), 1 << 4);
        }

        #[test]
        fn saturation_at_extremes() {
            let big = Q::from_f64(120.0);
            assert_eq!(big + big, Q::MAX);
            assert_eq!(big * big, Q::MAX);
            assert_eq!(Q::from_f64(1e9), Q::MAX);
            assert_eq!(Q::from_f64(-1e9), Q::MIN);
            assert_eq!(B::from_f64(100.0), B::MAX);
            assert_eq!((-B::MIN).raw(), i8::MAX);
        }

        #[test]
        fn widen_narrow_is_identity_in_range() {
            for v in [-3.5f32, -0.25, 0.0, 1.0, 2.75] {
                let q = <Q as Element>::from_f32(v);
                assert_eq!(Q::narrow(q.widen()), q);
            }
        }

        #[test]
        fn mul_full_matches_saturating_mul_in_range() {
            let a = Q::from_f64(1.5);
            let b = Q::from_f64(-2.25);
            assert_eq!(Q::narrow(a.mul_full(b)), a * b);
        }

        #[test]
        fn dot_acc_equals_scalar_exactly() {
            let a: Vec<Q> = (0..100)
                .map(|i| Q::from_f64((i as f64) * 0.031 - 1.2))
                .collect();
            let b: Vec<Q> = (0..100)
                .map(|i| Q::from_f64(0.9 - (i as f64) * 0.017))
                .collect();
            assert_eq!(Q::dot_acc(&a, &b), Q::dot_acc_scalar(&a, &b));
        }

        #[test]
        fn max_hw_and_min_value() {
            assert_eq!(Q::min_value(), Q::MIN);
            let a = Q::from_f64(1.0);
            let b = Q::from_f64(2.0);
            assert_eq!(a.max_hw(b), b);
            assert_eq!(b.max_hw(a), b);
        }

        #[test]
        fn serde_roundtrip_raw_bits() {
            let x = Q::from_f64(-1.625);
            let v = x.to_value();
            assert_eq!(Q::from_value(&v).unwrap(), x);
        }
    }

    mod spec {
        use super::super::*;

        #[test]
        fn supported_set() {
            assert!(NumericSpec::F32.is_supported());
            assert!(NumericSpec::default_fixed().is_supported());
            for frac in [6, 8, 10, 12] {
                assert!(NumericSpec::Fixed16 { frac }.is_supported());
            }
            for frac in [4, 6] {
                assert!(NumericSpec::Fixed8 { frac }.is_supported());
            }
            assert!(!NumericSpec::Fixed16 { frac: 3 }.is_supported());
            assert!(!NumericSpec::Fixed8 { frac: 8 }.is_supported());
        }

        #[test]
        fn labels_and_bits() {
            assert_eq!(NumericSpec::F32.label(), "f32");
            assert_eq!(NumericSpec::Fixed16 { frac: 8 }.label(), "q16f8");
            assert_eq!(NumericSpec::Fixed8 { frac: 4 }.label(), "q8f4");
            assert_eq!(NumericSpec::F32.storage_bits(), 32);
            assert_eq!(NumericSpec::default_fixed().storage_bits(), 16);
            assert_eq!(NumericSpec::Fixed8 { frac: 4 }.storage_bits(), 8);
        }

        #[test]
        fn epsilon_matches_type() {
            assert_eq!(NumericSpec::F32.epsilon(), 0.0);
            assert_eq!(
                NumericSpec::Fixed16 { frac: 8 }.epsilon(),
                Fixed16::<8>::epsilon()
            );
        }

        #[test]
        fn with_numeric_dispatches() {
            use crate::Element;
            for spec in [
                NumericSpec::F32,
                NumericSpec::Fixed16 { frac: 8 },
                NumericSpec::Fixed8 { frac: 4 },
            ] {
                let one = crate::with_numeric!(spec, E => E::one().to_f32());
                assert_eq!(one, 1.0);
            }
        }

        #[test]
        #[should_panic(expected = "no kernel monomorphization")]
        fn with_numeric_panics_on_unsupported() {
            use crate::Element;
            let spec = NumericSpec::Fixed16 { frac: 3 };
            let _ = crate::with_numeric!(spec, E => E::one().to_f32());
        }
    }
}
