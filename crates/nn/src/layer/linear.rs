//! Fully-connected (linear/perceptron) layer — reference implementation of
//! paper Eq. 2: `o_j = Σ_i w_{i,j} · x_i + b_j`.
//!
//! Weights are stored as a `J × 1 × 1 × I` filter bank ([`Tensor4`]) so the
//! equivalence with a 1×1 convolution (§IV-B) is structural, not just
//! conceptual — `dfcnn-core` compiles both layer kinds through the same
//! machinery, and a property test asserts `Linear ≡ Conv2d(1×1)`.

use crate::act::Activation;
use dfcnn_tensor::{Shape3, Tensor1, Tensor3, Tensor4};

/// A fully-connected layer with `I` inputs and `J` outputs.
#[derive(Clone, Debug)]
pub struct Linear {
    weights: Tensor4<f32>, // J x 1 x 1 x I
    bias: Tensor1<f32>,
    activation: Activation,
}

/// Accumulated parameter gradients for a [`Linear`].
#[derive(Clone, Debug)]
pub struct LinearGrads {
    /// Gradient w.r.t. the weight matrix (same layout as the weights).
    pub weights: Tensor4<f32>,
    /// Gradient w.r.t. the biases.
    pub bias: Tensor1<f32>,
}

impl Linear {
    /// Create a layer from a `J × 1 × 1 × I` weight bank and `J` biases.
    pub fn new(weights: Tensor4<f32>, bias: Tensor1<f32>, activation: Activation) -> Self {
        assert_eq!(weights.kh(), 1, "linear weights must be 1x1 filters");
        assert_eq!(weights.kw(), 1, "linear weights must be 1x1 filters");
        assert_eq!(bias.len(), weights.k(), "bias length mismatch");
        Linear {
            weights,
            bias,
            activation,
        }
    }

    /// Number of inputs (`I`).
    pub fn inputs(&self) -> usize {
        self.weights.c()
    }

    /// Number of outputs (`J`).
    pub fn outputs(&self) -> usize {
        self.weights.k()
    }

    /// The weight bank.
    pub fn weights(&self) -> &Tensor4<f32> {
        &self.weights
    }

    /// Mutable weight bank.
    pub fn weights_mut(&mut self) -> &mut Tensor4<f32> {
        &mut self.weights
    }

    /// The biases.
    pub fn bias(&self) -> &Tensor1<f32> {
        &self.bias
    }

    /// Mutable biases.
    pub fn bias_mut(&mut self) -> &mut Tensor1<f32> {
        &mut self.bias
    }

    /// The activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Output shape: `1 × 1 × J`.
    pub fn output_shape(&self) -> Shape3 {
        Shape3::new(1, 1, self.outputs())
    }

    /// Zeroed gradient container matching this layer.
    pub fn zero_grads(&self) -> LinearGrads {
        LinearGrads {
            weights: Tensor4::zeros(self.weights.k(), 1, 1, self.weights.c()),
            bias: Tensor1::zeros(self.bias.len()),
        }
    }

    /// Forward pass on a `1 × 1 × I` volume.
    pub fn forward(&self, input: &Tensor3<f32>) -> Tensor3<f32> {
        assert_eq!(
            input.shape(),
            Shape3::new(1, 1, self.inputs()),
            "input shape mismatch"
        );
        let x = input.as_slice();
        let mut out = Tensor3::zeros(self.output_shape());
        for j in 0..self.outputs() {
            let w = self.weights.filter(j);
            let mut acc = self.bias.get(j);
            for (wi, xi) in w.iter().zip(x.iter()) {
                acc += wi * xi;
            }
            out.set(0, 0, j, self.activation.apply(acc));
        }
        out
    }

    /// Backward pass; accumulates parameter gradients, returns `∂L/∂input`.
    pub fn backward(
        &self,
        input: &Tensor3<f32>,
        output: &Tensor3<f32>,
        grad_out: &Tensor3<f32>,
        grads: &mut LinearGrads,
    ) -> Tensor3<f32> {
        let x = input.as_slice();
        let mut grad_in = Tensor3::zeros(input.shape());
        for j in 0..self.outputs() {
            let dpre =
                grad_out.get(0, 0, j) * self.activation.derivative_from_output(output.get(0, 0, j));
            if dpre == 0.0 {
                continue;
            }
            *grads.bias.get_mut(j) += dpre;
            let w = self.weights.filter(j);
            for i in 0..self.inputs() {
                *grads.weights.get_mut(j, 0, 0, i) += dpre * x[i];
                grad_in.as_mut_slice()[i] += dpre * w[i];
            }
        }
        grad_in
    }

    /// Apply an SGD step.
    pub fn apply_grads(&mut self, grads: &LinearGrads, lr: f32) {
        for (p, g) in self
            .weights
            .as_mut_slice()
            .iter_mut()
            .zip(grads.weights.as_slice())
        {
            *p -= lr * g;
        }
        for (p, g) in self
            .bias
            .as_mut_slice()
            .iter_mut()
            .zip(grads.bias.as_slice())
        {
            *p -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Conv2d;
    use dfcnn_tensor::ConvGeometry;

    fn small() -> Linear {
        // 3 inputs -> 2 outputs, w[j][i] = j*10 + i, b = [1, -1]
        let w = Tensor4::from_fn(2, 1, 1, 3, |j, _, _, i| (j * 10 + i) as f32);
        Linear::new(w, Tensor1::from_vec(vec![1.0, -1.0]), Activation::Identity)
    }

    #[test]
    fn forward_matches_eq2() {
        let l = small();
        let x = Tensor3::from_vec(Shape3::new(1, 1, 3), vec![1.0, 2.0, 3.0]);
        let y = l.forward(&x);
        // o0 = 0*1 + 1*2 + 2*3 + 1 = 9; o1 = 10*1 + 11*2 + 12*3 - 1 = 67
        assert_eq!(y.as_slice(), &[9.0, 67.0]);
    }

    #[test]
    fn linear_equals_1x1_conv() {
        // the paper's §IV-B equivalence, checked numerically
        let l = small();
        let geo = ConvGeometry::new(Shape3::new(1, 1, 3), 1, 1, 1, 0);
        let conv = Conv2d::new(geo, l.weights().clone(), l.bias().clone(), l.activation());
        let x = Tensor3::from_vec(Shape3::new(1, 1, 3), vec![0.5, -1.5, 2.0]);
        assert_eq!(l.forward(&x), conv.forward(&x));
    }

    #[test]
    fn gradient_check() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let w = dfcnn_tensor::init::linear_weights(&mut rng, 6, 4);
        let l = Linear::new(
            w,
            Tensor1::from_vec(vec![0.1, 0.2, -0.1, 0.0]),
            Activation::Tanh,
        );
        let x = Tensor3::from_fn(Shape3::new(1, 1, 6), |_, _, c| (c as f32 - 2.5) * 0.3);

        let y = l.forward(&x);
        let gout = Tensor3::full(y.shape(), 1.0);
        let mut grads = l.zero_grads();
        let gin = l.backward(&x, &y, &gout, &mut grads);

        let h = 1e-3f32;
        for &(j, i) in &[(0, 0), (3, 5), (1, 2)] {
            let mut lp = l.clone();
            *lp.weights_mut().get_mut(j, 0, 0, i) += h;
            let mut lm = l.clone();
            *lm.weights_mut().get_mut(j, 0, 0, i) -= h;
            let num = (lp.forward(&x).sum() - lm.forward(&x).sum()) / (2.0 * h);
            assert!(
                (num - grads.weights.get(j, 0, 0, i)).abs() < 1e-2,
                "weight grad mismatch at ({j},{i})"
            );
        }
        for i in [0, 3, 5] {
            let mut xp = x.clone();
            xp.set(0, 0, i, x.get(0, 0, i) + h);
            let mut xm = x.clone();
            xm.set(0, 0, i, x.get(0, 0, i) - h);
            let num = (l.forward(&xp).sum() - l.forward(&xm).sum()) / (2.0 * h);
            assert!(
                (num - gin.get(0, 0, i)).abs() < 1e-2,
                "input grad mismatch at {i}"
            );
        }
    }

    #[test]
    fn apply_grads_updates() {
        let mut l = small();
        let mut g = l.zero_grads();
        g.weights.set(1, 0, 0, 2, 4.0);
        l.apply_grads(&g, 0.25);
        assert_eq!(l.weights().get(1, 0, 0, 2), 11.0); // 12 - 1
    }

    #[test]
    #[should_panic(expected = "1x1")]
    fn non_1x1_weights_rejected() {
        let w = Tensor4::zeros(2, 2, 1, 3);
        Linear::new(w, Tensor1::zeros(2), Activation::Identity);
    }
}
