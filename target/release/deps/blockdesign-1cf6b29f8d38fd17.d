/root/repo/target/release/deps/blockdesign-1cf6b29f8d38fd17.d: crates/bench/src/bin/blockdesign.rs

/root/repo/target/release/deps/blockdesign-1cf6b29f8d38fd17: crates/bench/src/bin/blockdesign.rs

crates/bench/src/bin/blockdesign.rs:
