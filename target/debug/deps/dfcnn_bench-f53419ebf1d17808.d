/root/repo/target/debug/deps/dfcnn_bench-f53419ebf1d17808.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdfcnn_bench-f53419ebf1d17808.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdfcnn_bench-f53419ebf1d17808.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
