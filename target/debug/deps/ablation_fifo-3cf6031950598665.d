/root/repo/target/debug/deps/ablation_fifo-3cf6031950598665.d: crates/bench/src/bin/ablation_fifo.rs Cargo.toml

/root/repo/target/debug/deps/libablation_fifo-3cf6031950598665.rmeta: crates/bench/src/bin/ablation_fifo.rs Cargo.toml

crates/bench/src/bin/ablation_fifo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
