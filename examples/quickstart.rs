//! Quickstart: train the paper's USPS network, freeze it into the Fig. 4
//! accelerator design, simulate a batch cycle-accurately, and verify the
//! hardware's classifications against the software reference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dfcnn::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // --- 1. offline training (the weights end up "hardcoded" in the cores)
    println!("training the USPS network (paper test case 1) ...");
    let spec = NetworkSpec::test_case_1();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut network = spec.build(&mut rng);

    let mut gen = SyntheticUsps::new(1);
    let mut data = Dataset::new(gen.generate(250));
    data.shuffle(2);
    let split = data.split(0.8);
    let mut trainer = Trainer::new(TrainConfig {
        lr: 0.05,
        momentum: 0.9,
        batch_size: 16,
        epochs: 6,
    });
    let stats = trainer.fit(&mut network, split.train.samples());
    let last = stats.last().unwrap();
    println!(
        "  {} epochs, final train loss {:.3}, train accuracy {:.1}%",
        stats.len(),
        last.mean_loss,
        last.accuracy * 100.0
    );

    // --- 2. freeze into the paper's dataflow design
    let design = NetworkDesign::new(
        &network,
        PortConfig::paper_test_case_1(),
        DesignConfig::default(),
    )
    .expect("paper port config must be valid");
    println!("\naccelerator design:\n  {}", design.render_block_diagram());

    let cost = CostModel::default();
    let device = Device::xc7vx485t();
    let used = design.resources(&cost);
    let u = device.utilisation(&used);
    println!(
        "  resources on {}: FF {:.1}%, LUT {:.1}%, BRAM {:.1}%, DSP {:.1}% (fits: {})",
        device.name,
        u[0] * 100.0,
        u[1] * 100.0,
        u[2] * 100.0,
        u[3] * 100.0,
        device.fits(&used)
    );

    // --- 3. stream the held-out test set through the cycle simulator
    let test = split.test.samples();
    let images: Vec<_> = test.iter().map(|(x, _)| x.clone()).collect();
    let labels: Vec<_> = test.iter().map(|(_, l)| *l).collect();
    println!(
        "\nsimulating a batch of {} images at 100 MHz ...",
        images.len()
    );
    let (result, _) = design.instantiate(&images).run();
    let m = result.measurement(design.config().clock_hz);
    println!(
        "  total {} cycles; mean {:.2} µs/image; {:.0} images/s",
        result.cycles,
        m.mean_time_per_image_us(),
        m.images_per_second()
    );

    // --- 4. verify: the hardware must classify like the reference
    let report = verify::compare_outputs(&design, &images, &result.outputs);
    println!(
        "  verification: max |hw - ref| = {:.2e}, {} prediction mismatches / {}",
        report.max_abs_diff,
        report.mismatches.len(),
        report.checked
    );
    assert!(report.passes(1e-3), "hardware diverged from the reference");

    let correct = result
        .outputs
        .iter()
        .zip(labels.iter())
        .filter(|(scores, &label)| {
            let pred = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            pred == label
        })
        .count();
    println!(
        "  hardware test accuracy: {}/{} = {:.1}%",
        correct,
        labels.len(),
        100.0 * correct as f64 / labels.len() as f64
    );
}
