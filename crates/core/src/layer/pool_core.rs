//! The sub-sampling (pooling) layer core as a cycle actor.
//!
//! §IV-C: "as there is no combination between FM and rather just a
//! sub-sampling of each FM, it is possible to insert parallel sub-sampling
//! layer cores, one for each previous layer output port ... the
//! sub-sampling cores act as a standard filter inserted between the
//! convolutional layers without occupying too much area (perfect
//! pipelining and no multiple windows/convolutions)."
//!
//! [`PoolCore`] models the whole bank of parallel pooling cores for a
//! layer: each input port's interleaved channels are pooled independently
//! with a short comparator/adder pipeline, and results leave on the same
//! number of ports (the usual configuration) or re-interleaved over a
//! different port count.

use crate::kernel::pool_window;
use crate::layer::{core_quiescence, core_stall, OutputQueue};
use crate::sim::{Actor, Quiescence, Wiring};
use crate::sst::WindowEngine;
use crate::stream::{ChannelId, ChannelSet};
use crate::trace::{EventKind, Stall, Trace};
use dfcnn_hls::latency::OpLatency;
use dfcnn_hls::reduce::TreeAdder;
use dfcnn_nn::layer::{Pool2d, PoolKind};
use dfcnn_tensor::Numeric;

/// Pooling core bank plus its SST memory structure. Generic over the
/// executed element type: each channel's window is quantised before
/// pooling and the pooled value dequantised for the stream transport
/// (identities for `E = f32`, which is bit-identical to before).
pub struct PoolCore<E: Numeric = f32> {
    name: String,
    engine: WindowEngine,
    in_chs: Vec<ChannelId>,
    out_q: OutputQueue,
    kind: PoolKind,
    kh: usize,
    kw: usize,
    fm: usize,
    /// Initiation interval: interleaved channels per port (the core emits
    /// one pooled value per channel per window).
    ii: u64,
    depth: u64,
    out_per_port: usize,
    next_initiation: u64,
    window_buf: Vec<f32>,
    qvals: Vec<E>,
    out_buf: Vec<f32>,
    inits: u64,
}

impl<E: Numeric> PoolCore<E> {
    /// Build the pooling bank from the reference layer and port config.
    pub fn new(
        name: impl Into<String>,
        pool: &Pool2d,
        in_chs: Vec<ChannelId>,
        out_chs: Vec<ChannelId>,
        ops: &OpLatency,
    ) -> Self {
        let geo = *pool.geometry();
        let fm = geo.input.c;
        let in_ports = in_chs.len();
        let out_ports = out_chs.len();
        assert_eq!(fm % out_ports, 0, "OUT_PORTS must divide channel count");
        let engine = WindowEngine::new(geo, in_ports);
        let win = geo.kh * geo.kw;
        // comparator tree for max, adder tree + scale for mean
        let depth = match pool.kind() {
            PoolKind::Max => TreeAdder::new(win).depth() as u64 * ops.cmp as u64,
            PoolKind::Mean => TreeAdder::new(win).latency(ops) as u64 + ops.mul as u64,
        }
        .max(1);
        let ii = fm.div_ceil(out_ports).max(fm.div_ceil(in_ports)) as u64;
        PoolCore {
            name: name.into(),
            engine,
            in_chs,
            out_q: OutputQueue::new(out_chs),
            kind: pool.kind(),
            kh: geo.kh,
            kw: geo.kw,
            fm,
            ii,
            depth,
            out_per_port: fm / out_ports,
            next_initiation: 0,
            window_buf: vec![0.0; geo.window_volume()],
            qvals: vec![E::zero(); win],
            out_buf: vec![0.0; fm],
            inits: 0,
        }
    }

    /// Override the line-buffer capacity per port (fault injection; see
    /// [`crate::graph::DesignConfig::line_buffer_cap`]). `None` keeps the
    /// SST full-buffering bound.
    pub fn with_line_buffer_cap(mut self, cap: Option<usize>) -> Self {
        if let Some(c) = cap {
            self.engine = self.engine.with_capacity_per_port(c);
        }
        self
    }

    /// The initiation interval of the bank.
    pub fn ii(&self) -> u64 {
        self.ii
    }
}

impl<E: Numeric> Actor for PoolCore<E> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, cycle: u64, chans: &mut ChannelSet, trace: &mut Trace) {
        if self.out_q.drain(cycle, chans) > 0 {
            trace.record(cycle, &self.name, EventKind::Emit);
        }
        for (p, &ch) in self.in_chs.iter().enumerate() {
            if self.engine.can_accept(p) && chans.peek(ch).is_some() {
                let v = chans.pop(ch).unwrap();
                self.engine.accept(p, v);
            }
        }
        if cycle >= self.next_initiation
            && self.engine.window_ready()
            && !self.out_q.backlog_exceeds(cycle, self.out_per_port)
        {
            self.engine.extract(&mut self.window_buf);
            // pool each channel independently, straight from its window
            // slice (quantised at the boundary — identity for f32)
            for f in 0..self.fm {
                let base = f * self.kh * self.kw;
                let chan = &self.window_buf[base..base + self.kh * self.kw];
                for (q, &v) in self.qvals.iter_mut().zip(chan) {
                    *q = E::from_f32(v);
                }
                self.out_buf[f] = pool_window(self.kind, &self.qvals).to_f32();
            }
            self.out_q.schedule(cycle + self.depth, &self.out_buf);
            self.next_initiation = cycle + self.ii;
            self.inits += 1;
            trace.record(cycle, &self.name, EventKind::Initiate);
        }
    }

    fn busy(&self) -> bool {
        !self.out_q.is_empty() || self.engine.window_ready()
    }

    fn initiations(&self) -> u64 {
        self.inits
    }

    fn wiring(&self) -> Wiring {
        Wiring {
            inputs: self.in_chs.clone(),
            outputs: self.out_q.channels().to_vec(),
        }
    }

    fn quiescence(&self, now: u64, chans: &ChannelSet) -> Quiescence {
        core_quiescence(
            now,
            chans,
            &self.out_q,
            &self.in_chs,
            &self.engine,
            self.next_initiation,
            self.out_per_port,
        )
    }

    fn stall(&self, chans: &ChannelSet) -> Stall {
        core_stall(chans, &self.out_q, &self.in_chs, &self.engine)
    }

    fn buffer_hwm(&self) -> Option<(usize, usize)> {
        // peak per-port line-buffer occupancy vs the SST full-buffering
        // bound (both per port)
        Some((self.engine.max_occupancy(), self.engine.capacity_per_port()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::pool_forward_hw;
    use dfcnn_tensor::{ConvGeometry, Shape3, Tensor3};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_core(
        pool: &Pool2d,
        in_ports: usize,
        out_ports: usize,
        img: &Tensor3<f32>,
    ) -> Tensor3<f32> {
        let mut chans = ChannelSet::new();
        let ins: Vec<_> = (0..in_ports).map(|_| chans.alloc(8)).collect();
        let outs: Vec<_> = (0..out_ports).map(|_| chans.alloc(8)).collect();
        let ops = OpLatency::f32_virtex7();
        let mut core = PoolCore::<f32>::new("pool", pool, ins.clone(), outs.clone(), &ops);
        let fm = pool.geometry().input.c;
        let mut streams: Vec<Vec<f32>> = vec![Vec::new(); in_ports];
        for v in img.as_slice().chunks(fm) {
            for (f, &x) in v.iter().enumerate() {
                streams[f % in_ports].push(x);
            }
        }
        let mut cursors = vec![0usize; in_ports];
        let out_shape = pool.output_shape();
        let mut collected = Vec::with_capacity(out_shape.len());
        let mut trace = Trace::disabled();
        let mut cycle = 0u64;
        let mut next_fm = 0usize;
        while collected.len() < out_shape.len() {
            for p in 0..in_ports {
                if cursors[p] < streams[p].len() && chans.can_push(ins[p]) {
                    chans.push(ins[p], streams[p][cursors[p]]);
                    cursors[p] += 1;
                }
            }
            core.tick(cycle, &mut chans, &mut trace);
            loop {
                let port = outs[next_fm % out_ports];
                if let Some(v) = chans.pop(port) {
                    collected.push(v);
                    next_fm = (next_fm + 1) % fm;
                } else {
                    break;
                }
            }
            chans.commit_all();
            cycle += 1;
            assert!(cycle < 1_000_000, "pool core made no progress");
        }
        Tensor3::from_vec(out_shape, collected)
    }

    fn random_img(seed: u64, shape: Shape3) -> Tensor3<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        dfcnn_tensor::init::random_volume(&mut rng, shape, -1.0, 1.0)
    }

    #[test]
    fn maxpool_single_port_matches_kernel() {
        let geo = ConvGeometry::new(Shape3::new(6, 6, 3), 2, 2, 2, 0);
        let pool = Pool2d::new(geo, PoolKind::Max);
        let img = random_img(1, geo.input);
        assert_eq!(run_core(&pool, 1, 1, &img), pool_forward_hw(&pool, &img));
    }

    #[test]
    fn maxpool_parallel_ports_match() {
        // the paper's TC1 configuration: one pool core per port
        let geo = ConvGeometry::new(Shape3::new(12, 12, 6), 2, 2, 2, 0);
        let pool = Pool2d::new(geo, PoolKind::Max);
        let img = random_img(2, geo.input);
        assert_eq!(run_core(&pool, 6, 6, &img), pool_forward_hw(&pool, &img));
    }

    #[test]
    fn meanpool_matches() {
        let geo = ConvGeometry::new(Shape3::new(4, 4, 2), 2, 2, 2, 0);
        let pool = Pool2d::new(geo, PoolKind::Mean);
        let img = random_img(3, geo.input);
        assert_eq!(run_core(&pool, 2, 2, &img), pool_forward_hw(&pool, &img));
    }

    #[test]
    fn port_reduction_matches() {
        // 4 channels in on 4 ports, out on 2 ports
        let geo = ConvGeometry::new(Shape3::new(4, 4, 4), 2, 2, 2, 0);
        let pool = Pool2d::new(geo, PoolKind::Max);
        let img = random_img(4, geo.input);
        assert_eq!(run_core(&pool, 4, 2, &img), pool_forward_hw(&pool, &img));
    }

    #[test]
    fn fully_parallel_pool_ii_is_one() {
        let geo = ConvGeometry::new(Shape3::new(4, 4, 6), 2, 2, 2, 0);
        let pool = Pool2d::new(geo, PoolKind::Max);
        let mut chans = ChannelSet::new();
        let ins: Vec<_> = (0..6).map(|_| chans.alloc(4)).collect();
        let outs: Vec<_> = (0..6).map(|_| chans.alloc(4)).collect();
        let core = PoolCore::<f32>::new("p", &pool, ins, outs, &OpLatency::f32_virtex7());
        assert_eq!(core.ii(), 1);
    }
}
