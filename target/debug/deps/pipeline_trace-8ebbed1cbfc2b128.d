/root/repo/target/debug/deps/pipeline_trace-8ebbed1cbfc2b128.d: crates/bench/src/bin/pipeline_trace.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_trace-8ebbed1cbfc2b128.rmeta: crates/bench/src/bin/pipeline_trace.rs Cargo.toml

crates/bench/src/bin/pipeline_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
