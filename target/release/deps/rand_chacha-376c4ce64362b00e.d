/root/repo/target/release/deps/rand_chacha-376c4ce64362b00e.d: shims/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-376c4ce64362b00e.rlib: shims/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-376c4ce64362b00e.rmeta: shims/rand_chacha/src/lib.rs

shims/rand_chacha/src/lib.rs:
