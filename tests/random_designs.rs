//! Whole-design randomised testing: random topologies, random port
//! configurations, random inputs — the cycle simulator, the threaded
//! engine and the host-side hardware kernel must agree on every one, and
//! the software reference must stay within float tolerance.
//!
//! This is the strongest correctness statement in the repository: the
//! dataflow machinery (window engines, adapters, II throttling, FIFO
//! backpressure, emission scheduling) is *semantically invisible* — it
//! changes timing, never values.

mod common;

use common::{random_dag_design, random_ports, random_spec};
use dfcnn::core::graph::{DesignConfig, NetworkDesign, PortConfig};
use dfcnn::core::verify;
use dfcnn::tensor::NumericSpec;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_design_simulates_exactly(
        spec in random_spec(),
        seed in 0u64..10_000,
        fabric_normalization in proptest::bool::ANY,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let network = spec.build(&mut rng);
        let ports = random_ports(&spec, seed ^ 0xABCD);
        // half the runs also append the on-fabric LogSoftmax core
        let config = DesignConfig { fabric_normalization, ..DesignConfig::default() };
        let design = NetworkDesign::new(&network, ports, config)
            .expect("random divisor config must validate");

        let images: Vec<_> = (0..2)
            .map(|_| dfcnn::tensor::init::random_volume(&mut rng, spec.input, 0.0, 1.0))
            .collect();

        // 1. simulator is bit-exact vs the shared hardware kernel
        let (sim, _) = design.instantiate(&images).run();
        for (img, out) in images.iter().zip(sim.outputs.iter()) {
            let hw = design.hw_forward(img);
            prop_assert_eq!(out.as_slice(), hw.as_slice(), "sim != hw kernel");
        }

        // 2. threaded engine is bit-exact vs the simulator
        let exec = dfcnn::core::exec::ThreadedEngine::new(&design).run(&images);
        for (s, e) in sim.outputs.iter().zip(exec.outputs.iter()) {
            prop_assert_eq!(s.as_slice(), e.as_slice(), "sim != threaded engine");
        }

        // 3. the reference stays within float tolerance
        let report = verify::compare_outputs(&design, &images, &sim.outputs);
        prop_assert!(report.max_abs_diff < 1e-3, "reference diff {}", report.max_abs_diff);

        // 4. completions are ordered and measurement is sane
        prop_assert!(sim.completions.windows(2).all(|w| w[0] < w[1]));
        let m = sim.measurement(design.config().clock_hz);
        prop_assert!(m.mean_time_per_image_us() > 0.0);
    }

    /// The same statement over fork/join DAGs: random residual blocks
    /// (nested forks, ScaleShift / conv ops on either reconvergent path)
    /// stream through tee and eltwise-add cores without changing a bit.
    #[test]
    fn any_dag_design_simulates_exactly(seed in 0u64..10_000) {
        let design = random_dag_design(seed, DesignConfig::default());
        let report = dfcnn::core::check::check_design(&design);
        prop_assert!(report.is_clean(), "seed {}: {}", seed, report.render());

        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xF0);
        let shape = design.network().input_shape();
        let images: Vec<_> = (0..2)
            .map(|_| dfcnn::tensor::init::random_volume(&mut rng, shape, 0.0, 1.0))
            .collect();

        // 1. simulator is bit-exact vs the shared hardware kernel
        let (sim, _) = design.instantiate(&images).run();
        for (img, out) in images.iter().zip(sim.outputs.iter()) {
            let hw = design.hw_forward(img);
            prop_assert_eq!(out.as_slice(), hw.as_slice(), "sim != hw kernel");
        }

        // 2. threaded engine is bit-exact vs the simulator
        let exec = dfcnn::core::exec::ThreadedEngine::new(&design).run(&images);
        for (s, e) in sim.outputs.iter().zip(exec.outputs.iter()) {
            prop_assert_eq!(s.as_slice(), e.as_slice(), "sim != threaded engine");
        }

        // 3. the composed-layer reference stays within float tolerance
        let report = verify::compare_outputs(&design, &images, &sim.outputs);
        prop_assert!(report.max_abs_diff < 1e-3, "reference diff {}", report.max_abs_diff);

        // 4. completions are ordered and measurement is sane
        prop_assert!(sim.completions.windows(2).all(|w| w[0] < w[1]));
        let m = sim.measurement(design.config().clock_hz);
        prop_assert!(m.mean_time_per_image_us() > 0.0);
    }

    /// The fixed-point mode of the same statement: pick any supported
    /// fixed spec, and all three engines must agree **exactly** — the
    /// quantised datapath is deterministic hardware like the f32 one —
    /// while tracking the f32 reference within a quantisation-scaled
    /// tolerance. Exact i64 accumulation is what makes this independent
    /// of each engine's summation order.
    #[test]
    fn any_design_simulates_exactly_in_fixed_point(
        spec in random_spec(),
        seed in 0u64..10_000,
        spec_pick in 0usize..100,
    ) {
        let fixed_specs: Vec<NumericSpec> = NumericSpec::supported()
            .into_iter()
            .filter(|s| s.is_fixed())
            .collect();
        let numeric = fixed_specs[spec_pick % fixed_specs.len()];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let network = spec.build(&mut rng);
        let ports = random_ports(&spec, seed ^ 0xABCD);
        let config = DesignConfig { numeric, ..DesignConfig::default() };
        let design = NetworkDesign::new(&network, ports, config)
            .expect("random divisor config must validate");

        let images: Vec<_> = (0..2)
            .map(|_| dfcnn::tensor::init::random_volume(&mut rng, spec.input, 0.0, 1.0))
            .collect();

        // 1. simulator is bit-exact vs the shared hardware kernel
        let (sim, _) = design.instantiate(&images).run();
        for (img, out) in images.iter().zip(sim.outputs.iter()) {
            let hw = design.hw_forward(img);
            prop_assert_eq!(out.as_slice(), hw.as_slice(), "sim != hw kernel");
        }

        // 2. threaded engine is bit-exact vs the simulator
        let exec = dfcnn::core::exec::ThreadedEngine::new(&design).run(&images);
        for (s, e) in sim.outputs.iter().zip(exec.outputs.iter()) {
            prop_assert_eq!(s.as_slice(), e.as_slice(), "sim != threaded engine");
        }

        // 3. every emitted value is a representable point of the spec
        for out in &sim.outputs {
            for &v in out.as_slice() {
                let q = (v as f64 / numeric.epsilon()).round() * numeric.epsilon();
                prop_assert!((v as f64 - q).abs() < 1e-6, "{v} not on the {} grid", numeric.label());
            }
        }

        // 4. the f32 reference stays within quantisation-scaled tolerance
        let report = verify::compare_outputs(&design, &images, &sim.outputs);
        let tol = 64.0 * numeric.epsilon();
        prop_assert!(
            (report.max_abs_diff as f64) < tol,
            "{} diff {} > {}", numeric.label(), report.max_abs_diff, tol
        );
    }

    #[test]
    fn batching_never_slows_mean_time(spec in random_spec(), seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let network = spec.build(&mut rng);
        let paper_layers = spec.paper_depth();
        let design = NetworkDesign::new(
            &network,
            PortConfig::single_port(paper_layers),
            DesignConfig::default(),
        )
        .unwrap();
        let img = dfcnn::tensor::init::random_volume(&mut rng, spec.input, 0.0, 1.0);
        let mean = |n: usize| {
            let batch: Vec<_> = (0..n).map(|_| img.clone()).collect();
            let (r, _) = design.instantiate(&batch).run();
            r.measurement(design.config().clock_hz).mean_time_per_image()
        };
        let t1 = mean(1);
        let t4 = mean(4);
        // the high-level pipeline guarantee: batching never hurts
        prop_assert!(t4 <= t1 * 1.001, "t1={t1} t4={t4}");
    }
}
