/root/repo/target/debug/deps/ablation_accum-43c41596d3dc3415.d: crates/bench/src/bin/ablation_accum.rs Cargo.toml

/root/repo/target/debug/deps/libablation_accum-43c41596d3dc3415.rmeta: crates/bench/src/bin/ablation_accum.rs Cargo.toml

crates/bench/src/bin/ablation_accum.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
