//! The fork (tee) routing core — the fan-out point of a fork/join graph.
//!
//! A fork duplicates its input stream onto `B ≥ 2` branch port groups so a
//! residual block can feed both its transform path and its identity skip
//! path from the same activation stream. Like the §IV-A adapters it is
//! pure port plumbing: no backing network layer, no weights, no host
//! pipeline stage (both branches observe the same image, so the stage
//! topology routes each branch directly to the fork's producer).
//!
//! The actor mirrors [`crate::port::PortAdapter`]'s strict global FM
//! order: value `seq` (FM `seq mod FM`, on port `seq mod FM mod P`) moves
//! only when *every* branch can accept its copy — a blocked branch
//! backpressures the whole fork, which is exactly the hardware behaviour
//! of a tee writing all branch FIFOs in the same cycle.

use super::{CoreModel, CorePlan, StageSpec};
use crate::graph::{CoreInfo, DesignConfig, LayerPorts, NetworkDesign};
use crate::port::fm_port;
use crate::sim::{Actor, Quiescence, Wiring};
use crate::stream::{ChannelId, ChannelSet};
use crate::trace::{EventKind, Stall, Trace};
use dfcnn_fpga::resources::{CoreKind, CoreParams};
use dfcnn_nn::layer::Layer;
use std::fmt::Write as _;

/// The fork core's [`CoreModel`].
pub struct ForkModel;

/// Plan a fork core carrying `in_fm` interleaved FMs on `ports` streams
/// per branch. `in_values` is the per-image stream volume *entering* the
/// fork; `index` numbers the core in pipeline order (adapter convention).
pub(crate) fn plan_fork(in_fm: usize, ports: usize, in_values: u64, index: usize) -> CoreInfo {
    CoreInfo {
        name: format!("fork{index}"),
        params: CoreParams {
            kind: CoreKind::Fork,
            in_fm,
            out_fm: in_fm,
            in_ports: ports,
            out_ports: ports, // per branch; the out-degree lives in the edges
            kh: 1,
            kw: 1,
            image_w: 1,
            ii: 1,
            weights: 0,
            accumulators: 1,
        },
        layer_index: None,
        in_values_per_image: in_values,
        positions: 0,
    }
}

/// The fork (tee) actor: duplicates each input value onto every branch's
/// matching port, in strict global FM order.
pub struct ForkCore {
    name: String,
    in_chs: Vec<ChannelId>,
    out_chs: Vec<ChannelId>,
    fm: usize,
    seq: u64,
    moved: u64,
}

impl ForkCore {
    /// Build a fork over `fm` interleaved FMs. `out_chs` holds the branch
    /// port groups back to back: branch `b`'s port `p` is `out_chs[b·P+p]`.
    pub fn new(
        name: impl Into<String>,
        in_chs: Vec<ChannelId>,
        out_chs: Vec<ChannelId>,
        fm: usize,
    ) -> Self {
        assert!(!in_chs.is_empty(), "fork needs input ports");
        assert!(
            out_chs.len() >= 2 * in_chs.len() && out_chs.len().is_multiple_of(in_chs.len()),
            "fork needs at least two whole branch port groups"
        );
        assert_eq!(fm % in_chs.len(), 0, "ports must divide FM count");
        ForkCore {
            name: name.into(),
            in_chs,
            out_chs,
            fm,
            seq: 0,
            moved: 0,
        }
    }

    fn branches(&self) -> usize {
        self.out_chs.len() / self.in_chs.len()
    }
}

impl Actor for ForkCore {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, cycle: u64, chans: &mut ChannelSet, trace: &mut Trace) {
        let n = self.in_chs.len();
        let b = self.branches();
        let mut in_used = vec![false; n];
        // strict global order; stop at the first value that cannot move
        // to *all* branches
        for _ in 0..n {
            let f = (self.seq % self.fm as u64) as usize;
            let p = fm_port(f, n);
            if in_used[p] || chans.peek(self.in_chs[p]).is_none() {
                break;
            }
            if (0..b).any(|br| !chans.can_push(self.out_chs[br * n + p])) {
                break;
            }
            let v = chans.pop(self.in_chs[p]).unwrap();
            for br in 0..b {
                chans.push(self.out_chs[br * n + p], v);
            }
            in_used[p] = true;
            self.seq += 1;
            self.moved += 1;
            trace.record(cycle, &self.name, EventKind::Emit);
        }
    }

    fn busy(&self) -> bool {
        false // the tee holds no state between cycles
    }

    fn initiations(&self) -> u64 {
        self.moved
    }

    fn wiring(&self) -> Wiring {
        Wiring {
            inputs: self.in_chs.clone(),
            outputs: self.out_chs.clone(),
        }
    }

    fn quiescence(&self, _now: u64, chans: &ChannelSet) -> Quiescence {
        let n = self.in_chs.len();
        let f = (self.seq % self.fm as u64) as usize;
        let p = fm_port(f, n);
        let all_free = (0..self.branches()).all(|br| chans.can_push(self.out_chs[br * n + p]));
        if chans.peek(self.in_chs[p]).is_some() && all_free {
            Quiescence::Active
        } else {
            Quiescence::Wait(None)
        }
    }

    fn stall(&self, chans: &ChannelSet) -> Stall {
        let n = self.in_chs.len();
        let f = (self.seq % self.fm as u64) as usize;
        let p = fm_port(f, n);
        if chans.peek(self.in_chs[p]).is_none() {
            return Stall::Starved(p);
        }
        match (0..self.branches()).find(|br| !chans.can_push(self.out_chs[br * n + p])) {
            Some(br) => Stall::Backpressured(br * n + p),
            None => Stall::Computing, // the move happens next tick
        }
    }
}

impl CoreModel for ForkModel {
    fn kind(&self) -> CoreKind {
        CoreKind::Fork
    }

    fn label(&self) -> &'static str {
        "fork"
    }

    fn feature_maps(&self, _layer: &Layer) -> (usize, usize) {
        unreachable!("forks are planned from graph fan-out, not layers")
    }

    fn plan(&self, _layer: &Layer, _lp: LayerPorts, _config: &DesignConfig) -> CorePlan {
        unreachable!("forks are planned from graph fan-out, not layers")
    }

    fn estimate_interval(&self, core: &CoreInfo, _config: &DesignConfig) -> u64 {
        // one value per input port per cycle, all branches in lock-step
        core.in_values_per_image / core.params.in_ports as u64
    }

    fn range_transfer(
        &self,
        _design: &NetworkDesign,
        _core: &CoreInfo,
        _spec: dfcnn_tensor::NumericSpec,
        inputs: &[crate::range::Interval],
    ) -> crate::range::Transfer {
        // every branch carries a verbatim copy of the input stream
        crate::range::Transfer::identity(inputs)
    }

    fn static_profile(&self, design: &NetworkDesign, core: &CoreInfo) -> super::StaticProfile {
        // each branch re-emits the full input volume
        let idx = design
            .cores()
            .iter()
            .position(|c| c.name == core.name)
            .expect("fork core belongs to its design");
        super::StaticProfile {
            out_values_per_image: core.in_values_per_image * design.core_out_degree(idx) as u64,
            expected_ii: 1,
            line_buffer: None,
        }
    }

    fn block_label(&self, core: &CoreInfo) -> String {
        format!("[{} tee in:{}]", core.name, core.params.in_ports)
    }

    fn make_actor(
        &self,
        _design: &NetworkDesign,
        core: &CoreInfo,
        in_chs: Vec<ChannelId>,
        out_chs: Vec<ChannelId>,
    ) -> Box<dyn Actor> {
        Box::new(ForkCore::new(
            core.name.clone(),
            in_chs,
            out_chs,
            core.params.in_fm,
        ))
    }

    fn emit_cpp(&self, design: &NetworkDesign, idx: usize) -> String {
        use crate::codegen::{header, interface_pragmas, stream_args};
        let info = &design.cores()[idx];
        let p = &info.params;
        let branches = design.core_out_degree(idx).max(2);
        let mut s = header();
        let _ = write!(
            s,
            "// fork (tee) core: duplicates the activation stream onto {br}\n\
             // branch port groups — the fan-out point of a fork/join graph.\n\
             // A blocked branch backpressures the whole tee.\n\
             void {name}({ins}, {outs}) {{\n{ipr}{opr}\
             \x20   tee: for (int f = 0; ; f = (f + 1) % {fm}) {{\n\
             #pragma HLS PIPELINE II=1\n\
             \x20       duplicate(f % {ip} /* -> port b*{ip} + f % {ip} of each branch b */);\n\
             \x20   }}\n\
             }}\n",
            br = branches,
            name = info.name,
            ins = stream_args("in", p.in_ports),
            outs = stream_args("out", branches * p.out_ports),
            ipr = interface_pragmas("in", p.in_ports),
            opr = interface_pragmas("out", branches * p.out_ports),
            fm = p.in_fm,
            ip = p.in_ports,
        );
        s
    }

    fn stage(
        &self,
        _name: String,
        _layer: &Layer,
        _lp: LayerPorts,
        _config: &DesignConfig,
    ) -> Option<StageSpec> {
        None // pure port plumbing: branches tap the producer's image
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(core: &mut ForkCore, chans: &mut ChannelSet, cycles: usize) {
        let mut trace = Trace::disabled();
        for c in 0..cycles {
            core.tick(c as u64, chans, &mut trace);
            chans.commit_all();
        }
    }

    fn drain(chans: &mut ChannelSet, id: ChannelId) -> Vec<f32> {
        let mut v = Vec::new();
        while let Some(x) = chans.pop(id) {
            v.push(x);
        }
        v
    }

    #[test]
    fn duplicates_onto_both_branches() {
        let mut chans = ChannelSet::new();
        let i0 = chans.alloc(16);
        let a0 = chans.alloc(16);
        let b0 = chans.alloc(16);
        for f in 0..6 {
            chans.push(i0, f as f32);
        }
        chans.commit_all();
        let mut fork = ForkCore::new("fork", vec![i0], vec![a0, b0], 2);
        drive(&mut fork, &mut chans, 8);
        let want: Vec<f32> = (0..6).map(|f| f as f32).collect();
        assert_eq!(drain(&mut chans, a0), want);
        assert_eq!(drain(&mut chans, b0), want);
        assert_eq!(fork.initiations(), 6);
    }

    #[test]
    fn blocked_branch_backpressures_the_tee() {
        let mut chans = ChannelSet::new();
        let i0 = chans.alloc(16);
        let a0 = chans.alloc(2); // tiny: fills after two values
        let b0 = chans.alloc(16);
        for f in 0..6 {
            chans.push(i0, f as f32);
        }
        chans.commit_all();
        let mut fork = ForkCore::new("fork", vec![i0], vec![a0, b0], 2);
        drive(&mut fork, &mut chans, 8);
        // both branches advance in lock-step: the full one caps the other
        assert_eq!(chans.get(a0).len(), 2);
        assert_eq!(chans.get(b0).len(), 2);
        assert!(matches!(fork.stall(&chans), Stall::Backpressured(0)));
        // draining the slow branch (twice: it refills after two values)
        // restarts the tee and lets the fast branch finish
        for _ in 0..3 {
            drain(&mut chans, a0);
            chans.commit_all();
            drive(&mut fork, &mut chans, 8);
        }
        assert_eq!(drain(&mut chans, b0), vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(fork.initiations(), 6);
    }

    #[test]
    fn two_port_fork_keeps_fm_routing() {
        // 4 FMs on 2 ports, two branches: branch b port p is out[b*2+p]
        let mut chans = ChannelSet::new();
        let ins: Vec<_> = (0..2).map(|_| chans.alloc(16)).collect();
        let outs: Vec<_> = (0..4).map(|_| chans.alloc(16)).collect();
        // port 0 carries f=0,2; port 1 carries f=1,3
        chans.push(ins[0], 0.0);
        chans.push(ins[1], 1.0);
        chans.push(ins[0], 2.0);
        chans.push(ins[1], 3.0);
        chans.commit_all();
        let mut fork = ForkCore::new("fork", ins, outs.clone(), 4);
        drive(&mut fork, &mut chans, 8);
        assert_eq!(drain(&mut chans, outs[0]), vec![0.0, 2.0]);
        assert_eq!(drain(&mut chans, outs[1]), vec![1.0, 3.0]);
        assert_eq!(drain(&mut chans, outs[2]), vec![0.0, 2.0]);
        assert_eq!(drain(&mut chans, outs[3]), vec![1.0, 3.0]);
    }

    #[test]
    fn starved_fork_reports_the_input_port() {
        let mut chans = ChannelSet::new();
        let i0 = chans.alloc(4);
        let a0 = chans.alloc(4);
        let b0 = chans.alloc(4);
        let fork = ForkCore::new("fork", vec![i0], vec![a0, b0], 1);
        assert!(matches!(fork.stall(&chans), Stall::Starved(0)));
        assert!(matches!(fork.quiescence(0, &chans), Quiescence::Wait(None)));
    }

    #[test]
    fn plan_fork_shape() {
        let info = plan_fork(6, 2, 600, 3);
        assert_eq!(info.name, "fork3");
        assert_eq!(info.params.kind, CoreKind::Fork);
        assert_eq!(info.params.in_ports, 2);
        assert_eq!(info.params.out_ports, 2);
        assert_eq!(info.params.weights, 0);
        assert!(info.layer_index.is_none());
        assert_eq!(info.in_values_per_image, 600);
    }
}
