/root/repo/target/debug/deps/failure_modes-b77ec53c8dee9e5b.d: crates/core/tests/failure_modes.rs

/root/repo/target/debug/deps/failure_modes-b77ec53c8dee9e5b: crates/core/tests/failure_modes.rs

crates/core/tests/failure_modes.rs:
