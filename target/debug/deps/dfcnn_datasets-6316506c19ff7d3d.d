/root/repo/target/debug/deps/dfcnn_datasets-6316506c19ff7d3d.d: crates/datasets/src/lib.rs crates/datasets/src/batch.rs crates/datasets/src/cifar.rs crates/datasets/src/usps.rs Cargo.toml

/root/repo/target/debug/deps/libdfcnn_datasets-6316506c19ff7d3d.rmeta: crates/datasets/src/lib.rs crates/datasets/src/batch.rs crates/datasets/src/cifar.rs crates/datasets/src/usps.rs Cargo.toml

crates/datasets/src/lib.rs:
crates/datasets/src/batch.rs:
crates/datasets/src/cifar.rs:
crates/datasets/src/usps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
