/root/repo/target/debug/examples/generate_hls-889ec73fc9cb2353.d: examples/generate_hls.rs Cargo.toml

/root/repo/target/debug/examples/libgenerate_hls-889ec73fc9cb2353.rmeta: examples/generate_hls.rs Cargo.toml

examples/generate_hls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
