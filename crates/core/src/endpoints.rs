//! The ends of the pipeline: the DMA-fed image source and the score sink.
//!
//! These model the §V-A test harness: the Microblaze programs a DMA that
//! streams each image's pixels (row-major, channels interleaved — exactly
//! a [`dfcnn_tensor::Tensor3`]'s backing storage) into the first layer at
//! up to one 32-bit beat per cycle (400 MB/s at 100 MHz), and a second DMA
//! channel moves the classifier scores back, timestamped by the Axi-Timer.
//! Images of a batch are streamed back-to-back, which is what creates the
//! high-level pipelining effect of Fig. 6.

use crate::sim::{Actor, Quiescence, Wiring};
use crate::stream::{ChannelId, ChannelSet};
use crate::trace::{EventKind, Stall, Trace};
use dfcnn_fpga::dma::DmaChannel;

/// Image source: streams a batch, one value per DMA beat, routing channel
/// `f` of each pixel to first-layer port `f mod IN_PORTS`.
pub struct Source {
    name: String,
    /// The flattened batch: every image's stream-order values concatenated.
    data: Vec<f32>,
    /// Values per image.
    image_len: usize,
    /// Channels per pixel of the input volume.
    channels: usize,
    /// Output channel per first-layer port.
    out_ports: Vec<ChannelId>,
    dma: DmaChannel,
    cursor: usize,
    /// Cycle of the last DMA-throttled (credit/setup) failed attempt, used
    /// by the event-driven engine to replay the attempts that dense
    /// ticking would have made on the skipped cycles. While the source
    /// sleeps on this, `can_push` cannot turn false (only the source
    /// pushes that channel), so every skipped cycle *would* have attempted
    /// — exactly the sequence `accrue_failed_attempts` replays.
    dma_anchor: Option<u64>,
}

impl Source {
    /// Build a source for a batch of equally-shaped images.
    pub fn new(
        images: &[dfcnn_tensor::Tensor3<f32>],
        out_ports: Vec<ChannelId>,
        dma: DmaChannel,
    ) -> Self {
        assert!(!images.is_empty(), "empty batch");
        assert!(!out_ports.is_empty(), "source needs at least one port");
        let shape = images[0].shape();
        assert_eq!(
            shape.c % out_ports.len(),
            0,
            "first-layer ports must divide input channels"
        );
        let mut data = Vec::with_capacity(images.len() * shape.len());
        for img in images {
            assert_eq!(img.shape(), shape, "batch images must share a shape");
            data.extend_from_slice(img.as_slice());
        }
        let mut s = Source {
            name: "dma-source".to_string(),
            data,
            image_len: shape.len(),
            channels: shape.c,
            out_ports,
            dma,
            cursor: 0,
            dma_anchor: None,
        };
        s.dma.start_transfer();
        s
    }

    /// Values remaining to stream.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.cursor
    }

    fn port_for(&self, index: usize) -> ChannelId {
        let channel = index % self.channels;
        self.out_ports[channel % self.out_ports.len()]
    }
}

impl Actor for Source {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, cycle: u64, chans: &mut ChannelSet, trace: &mut Trace) {
        if self.cursor >= self.data.len() {
            return;
        }
        let target = self.port_for(self.cursor % self.image_len);
        // consume DMA credit only when the stream can actually advance
        if !chans.can_push(target) {
            return;
        }
        if let Some(t0) = self.dma_anchor.take() {
            // replay the failed attempts of the skipped cycles (a no-op
            // under dense ticking, where the gap is always zero)
            self.dma.accrue_failed_attempts(cycle - t0 - 1);
        }
        if self.dma.tick() {
            chans.push(target, self.data[self.cursor]);
            self.cursor += 1;
            trace.record(cycle, &self.name, EventKind::Emit);
            if self.cursor.is_multiple_of(self.image_len) && self.cursor < self.data.len() {
                // next image: charge the per-transfer setup overhead
                self.dma.start_transfer();
            }
        } else {
            self.dma_anchor = Some(cycle);
        }
    }

    fn busy(&self) -> bool {
        self.cursor < self.data.len()
    }

    fn initiations(&self) -> u64 {
        self.cursor as u64
    }

    fn wiring(&self) -> Wiring {
        Wiring {
            inputs: vec![],
            outputs: self.out_ports.clone(),
        }
    }

    fn quiescence(&self, now: u64, chans: &ChannelSet) -> Quiescence {
        if self.cursor >= self.data.len() {
            return Quiescence::Wait(None); // batch fully streamed
        }
        let target = self.port_for(self.cursor % self.image_len);
        if !chans.can_push(target) {
            return Quiescence::Wait(None); // backpressured: pop wakes us
        }
        if self.dma_anchor == Some(now) {
            // throttled purely by DMA credit/setup: sleep exactly until
            // the first cycle a dense attempt sequence would succeed
            return Quiescence::Wait(Some(now + self.dma.cycles_until_ready()));
        }
        Quiescence::Active
    }

    fn stall(&self, chans: &ChannelSet) -> Stall {
        if self.cursor >= self.data.len() {
            return Stall::Idle; // batch fully streamed
        }
        let index = self.cursor % self.image_len;
        let port = (index % self.channels) % self.out_ports.len();
        if !chans.can_push(self.out_ports[port]) {
            return Stall::Backpressured(port);
        }
        Stall::Computing // DMA credit/setup throttle: the link is busy
    }
}

/// What the sink has collected, shared with the engine.
#[derive(Clone, Debug, Default)]
pub struct SinkState {
    /// Cycle of each image's final value.
    pub completions: Vec<u64>,
    /// Collected scores per image, in FM order.
    pub outputs: Vec<Vec<f32>>,
}

/// Score sink: reassembles the interleaved output stream into per-image
/// score vectors, at most one value per cycle (the S2MM DMA beat rate).
pub struct Sink {
    name: String,
    in_ports: Vec<ChannelId>,
    /// Values per image (number of classes).
    per_image: usize,
    state: std::rc::Rc<std::cell::RefCell<SinkState>>,
    current: Vec<f32>,
    dma: DmaChannel,
    /// Same skipped-cycle DMA replay anchor as [`Source::dma_anchor`];
    /// sound because only the sink pops its input, so a visible value
    /// stays visible across the sleep.
    dma_anchor: Option<u64>,
}

impl Sink {
    /// Build a sink reading `per_image` values per image, value `j` from
    /// port `j mod ports`.
    pub fn new(
        in_ports: Vec<ChannelId>,
        per_image: usize,
        state: std::rc::Rc<std::cell::RefCell<SinkState>>,
        dma: DmaChannel,
    ) -> Self {
        assert!(!in_ports.is_empty(), "sink needs at least one port");
        assert!(per_image >= 1, "images must produce at least one value");
        Sink {
            name: "dma-sink".to_string(),
            in_ports,
            per_image,
            state,
            current: Vec::with_capacity(per_image),
            dma,
            dma_anchor: None,
        }
    }
}

impl Actor for Sink {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, cycle: u64, chans: &mut ChannelSet, trace: &mut Trace) {
        let next_j = self.current.len();
        let port = self.in_ports[next_j % self.in_ports.len()];
        if chans.peek(port).is_none() {
            return;
        }
        if let Some(t0) = self.dma_anchor.take() {
            self.dma.accrue_failed_attempts(cycle - t0 - 1);
        }
        if self.dma.tick() {
            let v = chans.pop(port).unwrap();
            self.current.push(v);
            if self.current.len() == self.per_image {
                let mut s = self.state.borrow_mut();
                s.outputs.push(std::mem::take(&mut self.current));
                s.completions.push(cycle);
                trace.record(cycle, &self.name, EventKind::ImageDone);
                self.current = Vec::with_capacity(self.per_image);
            }
        } else {
            self.dma_anchor = Some(cycle);
        }
    }

    fn busy(&self) -> bool {
        !self.current.is_empty()
    }

    fn initiations(&self) -> u64 {
        self.state.borrow().completions.len() as u64
    }

    fn wiring(&self) -> Wiring {
        Wiring {
            inputs: self.in_ports.clone(),
            outputs: vec![],
        }
    }

    fn quiescence(&self, now: u64, chans: &ChannelSet) -> Quiescence {
        let port = self.in_ports[self.current.len() % self.in_ports.len()];
        if chans.peek(port).is_none() {
            return Quiescence::Wait(None); // starved: push wakes us
        }
        if self.dma_anchor == Some(now) {
            return Quiescence::Wait(Some(now + self.dma.cycles_until_ready()));
        }
        Quiescence::Active
    }

    fn stall(&self, chans: &ChannelSet) -> Stall {
        let idx = self.current.len() % self.in_ports.len();
        if chans.peek(self.in_ports[idx]).is_some() {
            return Stall::Computing; // S2MM beat-rate throttle
        }
        if self.current.is_empty() {
            Stall::Idle // between images
        } else {
            Stall::Starved(idx) // mid-image, the pipeline ran dry
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfcnn_fpga::dma::DmaConfig;
    use dfcnn_tensor::{Shape3, Tensor3};

    fn img(v: f32, shape: Shape3) -> Tensor3<f32> {
        let mut i = v;
        Tensor3::from_fn(shape, |_, _, _| {
            i += 1.0;
            i
        })
    }

    #[test]
    fn source_streams_in_order_single_port() {
        let shape = Shape3::new(2, 2, 1);
        let a = img(0.0, shape);
        let mut chans = ChannelSet::new();
        let ch = chans.alloc(16);
        let mut src = Source::new(
            std::slice::from_ref(&a),
            vec![ch],
            DmaChannel::new(DmaConfig::paper()),
        );
        let mut trace = Trace::disabled();
        for c in 0..8 {
            src.tick(c, &mut chans, &mut trace);
            chans.commit_all();
        }
        let mut got = Vec::new();
        while let Some(v) = chans.pop(ch) {
            got.push(v);
        }
        assert_eq!(got, a.as_slice());
        assert!(!src.busy());
    }

    #[test]
    fn source_routes_channels_round_robin() {
        // 2 channels over 2 ports: channel 0 -> port 0, channel 1 -> port 1
        let shape = Shape3::new(1, 2, 2);
        let a = img(0.0, shape); // stream: 1,2,3,4
        let mut chans = ChannelSet::new();
        let p0 = chans.alloc(8);
        let p1 = chans.alloc(8);
        let mut src = Source::new(&[a], vec![p0, p1], DmaChannel::new(DmaConfig::paper()));
        let mut trace = Trace::disabled();
        for c in 0..8 {
            src.tick(c, &mut chans, &mut trace);
            chans.commit_all();
        }
        let drain = |chans: &mut ChannelSet, id| {
            let mut v = Vec::new();
            while let Some(x) = chans.pop(id) {
                v.push(x);
            }
            v
        };
        assert_eq!(drain(&mut chans, p0), vec![1.0, 3.0]);
        assert_eq!(drain(&mut chans, p1), vec![2.0, 4.0]);
    }

    #[test]
    fn source_respects_backpressure() {
        let shape = Shape3::new(2, 2, 1);
        let a = img(0.0, shape);
        let mut chans = ChannelSet::new();
        let ch = chans.alloc(2); // tiny FIFO
        let mut src = Source::new(&[a], vec![ch], DmaChannel::new(DmaConfig::paper()));
        let mut trace = Trace::disabled();
        for c in 0..10 {
            src.tick(c, &mut chans, &mut trace);
            chans.commit_all();
        }
        // only 2 values fit; source must still be busy
        assert_eq!(chans.get(ch).len(), 2);
        assert!(src.busy());
        assert_eq!(src.remaining(), 2);
    }

    #[test]
    fn sink_reassembles_and_timestamps() {
        let mut chans = ChannelSet::new();
        let ch = chans.alloc(16);
        let state = std::rc::Rc::new(std::cell::RefCell::new(SinkState::default()));
        let mut sink = Sink::new(
            vec![ch],
            3,
            state.clone(),
            DmaChannel::new(DmaConfig::paper()),
        );
        let mut trace = Trace::disabled();
        // preload 6 values = 2 images
        for v in 0..6 {
            chans.push(ch, v as f32);
        }
        chans.commit_all();
        for c in 0..10 {
            sink.tick(c, &mut chans, &mut trace);
            chans.commit_all();
        }
        let s = state.borrow();
        assert_eq!(s.outputs.len(), 2);
        assert_eq!(s.outputs[0], vec![0.0, 1.0, 2.0]);
        assert_eq!(s.outputs[1], vec![3.0, 4.0, 5.0]);
        assert_eq!(s.completions.len(), 2);
        assert!(s.completions[0] < s.completions[1]);
    }

    #[test]
    fn sink_rate_limited_to_one_per_cycle() {
        let mut chans = ChannelSet::new();
        let ch = chans.alloc(16);
        let state = std::rc::Rc::new(std::cell::RefCell::new(SinkState::default()));
        let mut sink = Sink::new(
            vec![ch],
            4,
            state.clone(),
            DmaChannel::new(DmaConfig::paper()),
        );
        let mut trace = Trace::disabled();
        for v in 0..4 {
            chans.push(ch, v as f32);
        }
        chans.commit_all();
        // exactly 4 cycles needed to drain 4 values
        for c in 0..3 {
            sink.tick(c, &mut chans, &mut trace);
        }
        assert!(state.borrow().outputs.is_empty());
        sink.tick(3, &mut chans, &mut trace);
        assert_eq!(state.borrow().outputs.len(), 1);
    }

    #[test]
    #[should_panic(expected = "share a shape")]
    fn mixed_shapes_rejected() {
        let a = img(0.0, Shape3::new(2, 2, 1));
        let b = img(0.0, Shape3::new(2, 3, 1));
        let mut chans = ChannelSet::new();
        let ch = chans.alloc(4);
        Source::new(&[a, b], vec![ch], DmaChannel::new(DmaConfig::paper()));
    }
}
