//! Latency formulas for pipelined loop nests.
//!
//! A pipelined loop with trip count `N`, initiation interval `II` and
//! pipeline depth `D` finishes in `D + II · (N - 1)` cycles — the single
//! formula underlying every stage-interval estimate in this repository.
//! [`LoopNest`] composes it for the rectangular nests the compute cores
//! are built from.

use crate::latency::OpLatency;
use crate::reduce::TreeAdder;
use serde::{Deserialize, Serialize};

/// A pipelined loop: trip count, II, and depth of the loop body.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopNest {
    /// Total iterations (product of all nested trip counts after
    /// flattening, which is how the PIPELINE directive treats a perfect
    /// nest).
    pub trip_count: u64,
    /// Initiation interval.
    pub ii: u32,
    /// Pipeline depth of the loop body in cycles.
    pub depth: u32,
}

impl LoopNest {
    /// Construct a loop nest descriptor.
    pub fn new(trip_count: u64, ii: u32, depth: u32) -> Self {
        assert!(ii >= 1, "II must be at least 1");
        assert!(depth >= 1, "depth must be at least 1");
        LoopNest {
            trip_count,
            ii,
            depth,
        }
    }

    /// Total cycles: `depth + II * (trip_count - 1)`, or 0 for an empty loop.
    pub fn total_cycles(&self) -> u64 {
        if self.trip_count == 0 {
            0
        } else {
            self.depth as u64 + self.ii as u64 * (self.trip_count - 1)
        }
    }

    /// Steady-state throughput in iterations per cycle.
    pub fn throughput(&self) -> f64 {
        1.0 / self.ii as f64
    }

    /// The pipeline depth of a convolution compute-core body: window
    /// multiply (one cycle issue on parallel multipliers, `mul` latency),
    /// tree reduction over the window, accumulation into the output
    /// register, and the activation unit.
    pub fn conv_body_depth(window: usize, ops: &OpLatency) -> u32 {
        ops.mul + TreeAdder::new(window).latency(ops) + ops.add + ops.activation
    }

    /// Latency of one convolution layer pass over an image:
    /// the coordinate loop (trip count = output positions) pipelined at
    /// `II` (Eq. 4) with the conv body depth.
    pub fn conv_layer(positions: u64, window: usize, ii: u32, ops: &OpLatency) -> Self {
        LoopNest::new(positions, ii, Self::conv_body_depth(window, ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_formula() {
        let l = LoopNest::new(100, 2, 10);
        assert_eq!(l.total_cycles(), 10 + 2 * 99);
    }

    #[test]
    fn single_iteration_is_depth() {
        assert_eq!(LoopNest::new(1, 4, 7).total_cycles(), 7);
    }

    #[test]
    fn empty_loop_is_free() {
        assert_eq!(LoopNest::new(0, 1, 5).total_cycles(), 0);
    }

    #[test]
    fn conv_body_depth_counts_all_stages() {
        let ops = OpLatency::f32_virtex7();
        // 5x5x1 window: mul(8) + tree(5 levels * 11) + add(11) + act(4)
        assert_eq!(LoopNest::conv_body_depth(25, &ops), 8 + 55 + 11 + 4);
    }

    #[test]
    fn tc2_conv1_latency_magnitude() {
        // TC2 conv1: 28x28 positions, II = 12, 5x5x3 window
        let ops = OpLatency::f32_virtex7();
        let l = LoopNest::conv_layer(784, 75, 12, &ops);
        let cycles = l.total_cycles();
        // II-dominated: ~ 12 * 783 + depth ≈ 9.5k cycles ≈ 95 µs at 100 MHz
        assert!((9_000..11_000).contains(&cycles), "cycles = {cycles}");
    }

    #[test]
    fn throughput_inverse_of_ii() {
        assert_eq!(LoopNest::new(10, 4, 1).throughput(), 0.25);
    }

    #[test]
    #[should_panic(expected = "II must be")]
    fn zero_ii_rejected() {
        LoopNest::new(1, 0, 1);
    }
}
