/root/repo/target/debug/examples/quickstart-81f8d35f379b9bf4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-81f8d35f379b9bf4: examples/quickstart.rs

examples/quickstart.rs:
