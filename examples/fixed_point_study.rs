//! The data-type study the paper defers to future work (§IV-B: the
//! accumulation-latency issue "does not arise when using integer values,
//! and will be subject to further study").
//!
//! We quantise the trained USPS network to Q15.16 fixed point, measure
//! the classification agreement with the f32 reference, and contrast the
//! scheduling consequences: a fixed-point adder closes its loop in one
//! cycle, so the FC core needs **no interleaved accumulators**, and the
//! conv core's reduction tree is 11× shallower.
//!
//! ```text
//! cargo run --release --example fixed_point_study
//! ```

use dfcnn::hls::accum::InterleavedAccumulator;
use dfcnn::hls::latency::OpLatency;
use dfcnn::hls::reduce::TreeAdder;
use dfcnn::prelude::*;
use dfcnn::tensor::fixed::Q16;
use dfcnn::tensor::Element;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Quantise a value through Q15.16 and back — the precision the
/// fixed-point datapath would see.
fn q16_roundtrip(v: f32) -> f32 {
    <Q16 as Element>::from_f32(v).to_f32()
}

fn main() {
    // --- train the reference in f32
    println!("training the USPS network in f32 ...");
    let spec = NetworkSpec::test_case_1();
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let mut network = spec.build(&mut rng);
    let mut gen = SyntheticUsps::new(8);
    let mut data = Dataset::new(gen.generate(250));
    data.shuffle(3);
    let split = data.split(0.8);
    Trainer::new(TrainConfig::default()).fit(&mut network, split.train.samples());

    // --- quantise every parameter to Q15.16
    let mut quantised = network.clone();
    for layer in quantised.layers_mut() {
        match layer {
            dfcnn::nn::Layer::Conv(c) => {
                c.filters_mut()
                    .as_mut_slice()
                    .iter_mut()
                    .for_each(|w| *w = q16_roundtrip(*w));
                c.bias_mut()
                    .as_mut_slice()
                    .iter_mut()
                    .for_each(|b| *b = q16_roundtrip(*b));
            }
            dfcnn::nn::Layer::Linear(l) => {
                l.weights_mut()
                    .as_mut_slice()
                    .iter_mut()
                    .for_each(|w| *w = q16_roundtrip(*w));
                l.bias_mut()
                    .as_mut_slice()
                    .iter_mut()
                    .for_each(|b| *b = q16_roundtrip(*b));
            }
            _ => {}
        }
    }

    // --- accuracy impact
    let acc =
        |net: &Network| dfcnn::nn::metrics::accuracy_of(|x| net.predict(x), split.test.samples());
    let (a32, a16) = (acc(&network), acc(&quantised));
    println!(
        "test accuracy: f32 {:.1}% vs Q15.16-quantised {:.1}% (paper's reference \
         [24] reports 0.4% loss for 16-bit quantisation at ImageNet scale)",
        a32 * 100.0,
        a16 * 100.0
    );
    assert!(
        a16 >= a32 - 0.05,
        "quantisation should cost at most a few points"
    );

    // --- scheduling impact
    let f32_ops = OpLatency::f32_virtex7();
    let fx_ops = OpLatency::fixed_point();
    println!("\nscheduling consequences of the datapath choice:");
    println!(
        "  FC accumulation: f32 needs {} interleaved banks for II=1; fixed point needs {}",
        InterleavedAccumulator::sized_for(&f32_ops).banks(),
        InterleavedAccumulator::sized_for(&fx_ops).banks()
    );
    let tree = TreeAdder::new(150); // TC1 conv window reduction
    println!(
        "  conv reduction tree over 150 products: {} cycles (f32) vs {} cycles (fixed)",
        tree.latency(&f32_ops),
        tree.latency(&fx_ops)
    );
    let fc900_f32 = InterleavedAccumulator::new(11).total_cycles(900, &f32_ops);
    let fc900_fx = InterleavedAccumulator::new(1).total_cycles(900, &fx_ops);
    println!(
        "  900-input FC accumulation: {} cycles (f32, 11 banks) vs {} cycles \
         (fixed, single accumulator)",
        fc900_f32, fc900_fx
    );
    assert!(fc900_fx < fc900_f32);
    println!("\nfixed point removes the §IV-B accumulator workaround entirely.");
}
