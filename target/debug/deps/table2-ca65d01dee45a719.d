/root/repo/target/debug/deps/table2-ca65d01dee45a719.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-ca65d01dee45a719: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
