//! Procedural 16×16 grayscale digits: the USPS stand-in.
//!
//! Each digit class is rendered from a fixed set of strokes (line segments
//! on a 16×16 canvas, LED-display style with diagonals), then perturbed:
//! random sub-pixel translation, per-image contrast, additive noise and a
//! one-pass box blur to soften edges, mimicking the anti-aliased scans of
//! the original USPS data.

use crate::{Generator, Sample};
use dfcnn_tensor::{Shape3, Tensor3};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A stroke from `(x0, y0)` to `(x1, y1)` in a 16×16 coordinate space.
type Stroke = (f32, f32, f32, f32);

/// Stroke tables for the ten digit classes, on a canvas with corners
/// (3,2)-(12,13) so jitter never clips the glyph.
fn strokes(digit: usize) -> &'static [Stroke] {
    const L: f32 = 3.0; // left
    const R: f32 = 12.0; // right
    const T: f32 = 2.0; // top
    const B: f32 = 13.0; // bottom
    const M: f32 = 7.5; // middle row
    const CX: f32 = 7.5; // centre column
    match digit {
        0 => &[(L, T, R, T), (R, T, R, B), (R, B, L, B), (L, B, L, T)],
        1 => &[(CX, T, CX, B), (CX - 2.0, T + 2.0, CX, T)],
        2 => &[
            (L, T, R, T),
            (R, T, R, M),
            (R, M, L, M),
            (L, M, L, B),
            (L, B, R, B),
        ],
        3 => &[(L, T, R, T), (R, T, R, B), (L, M, R, M), (L, B, R, B)],
        4 => &[(L, T, L, M), (L, M, R, M), (R, T, R, B)],
        5 => &[
            (R, T, L, T),
            (L, T, L, M),
            (L, M, R, M),
            (R, M, R, B),
            (R, B, L, B),
        ],
        6 => &[
            (R, T, L, T),
            (L, T, L, B),
            (L, B, R, B),
            (R, B, R, M),
            (R, M, L, M),
        ],
        7 => &[(L, T, R, T), (R, T, CX - 1.0, B)],
        8 => &[
            (L, T, R, T),
            (R, T, R, B),
            (R, B, L, B),
            (L, B, L, T),
            (L, M, R, M),
        ],
        9 => &[
            (R, M, L, M),
            (L, M, L, T),
            (L, T, R, T),
            (R, T, R, B),
            (R, B, L, B),
        ],
        _ => panic!("digit out of range"),
    }
}

/// Deterministic synthetic USPS generator.
pub struct SyntheticUsps {
    rng: ChaCha8Rng,
    noise: f32,
}

impl SyntheticUsps {
    /// Image shape: `16 × 16 × 1`.
    pub const SHAPE: Shape3 = Shape3 { h: 16, w: 16, c: 1 };

    /// Create a generator with the default noise level (0.08).
    pub fn new(seed: u64) -> Self {
        Self::with_noise(seed, 0.08)
    }

    /// Create a generator with a custom additive-noise amplitude.
    pub fn with_noise(seed: u64, noise: f32) -> Self {
        SyntheticUsps {
            rng: ChaCha8Rng::seed_from_u64(seed),
            noise,
        }
    }

    /// Render one digit with fresh random perturbations.
    pub fn render(&mut self, digit: usize) -> Tensor3<f32> {
        assert!(digit < 10, "digit out of range");
        let dx = self.rng.gen_range(-1.0f32..1.0);
        let dy = self.rng.gen_range(-1.0f32..1.0);
        let contrast = self.rng.gen_range(0.75f32..1.0);
        let thickness = self.rng.gen_range(0.9f32..1.4);

        let mut canvas = [[0.0f32; 16]; 16];
        for &(x0, y0, x1, y1) in strokes(digit) {
            draw_stroke(
                &mut canvas,
                x0 + dx,
                y0 + dy,
                x1 + dx,
                y1 + dy,
                thickness,
                contrast,
            );
        }
        // one-pass 3x3 box blur to emulate scan softness
        let blurred = blur(&canvas);
        let noise = self.noise;
        let rng = &mut self.rng;
        Tensor3::from_fn(Self::SHAPE, |y, x, _| {
            let n = if noise > 0.0 {
                rng.gen_range(-noise..noise)
            } else {
                0.0
            };
            (blurred[y][x] + n).clamp(0.0, 1.0)
        })
    }
}

/// Rasterise a line segment with soft (distance-based) intensity falloff.
fn draw_stroke(
    canvas: &mut [[f32; 16]; 16],
    x0: f32,
    y0: f32,
    x1: f32,
    y1: f32,
    thickness: f32,
    intensity: f32,
) {
    let (vx, vy) = (x1 - x0, y1 - y0);
    let len2 = (vx * vx + vy * vy).max(1e-6);
    for (y, row) in canvas.iter_mut().enumerate() {
        for (x, px) in row.iter_mut().enumerate() {
            let (px_x, px_y) = (x as f32, y as f32);
            // distance from pixel centre to the segment
            let t = (((px_x - x0) * vx + (px_y - y0) * vy) / len2).clamp(0.0, 1.0);
            let (cx, cy) = (x0 + t * vx, y0 + t * vy);
            let d = ((px_x - cx).powi(2) + (px_y - cy).powi(2)).sqrt();
            let v = intensity * (1.0 - (d / thickness)).clamp(0.0, 1.0);
            *px = px.max(v);
        }
    }
}

#[allow(clippy::needless_range_loop)] // 2-D stencil: indexing both arrays by (y, x) is the clear form
fn blur(canvas: &[[f32; 16]; 16]) -> [[f32; 16]; 16] {
    let mut out = [[0.0f32; 16]; 16];
    for y in 0..16 {
        for x in 0..16 {
            let mut sum = 0.0;
            let mut n = 0.0;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    let (yy, xx) = (y as i32 + dy, x as i32 + dx);
                    if (0..16).contains(&yy) && (0..16).contains(&xx) {
                        // centre-weighted kernel
                        let w = if dy == 0 && dx == 0 { 4.0 } else { 1.0 };
                        sum += w * canvas[yy as usize][xx as usize];
                        n += w;
                    }
                }
            }
            out[y][x] = sum / n;
        }
    }
    out
}

impl Generator for SyntheticUsps {
    fn classes(&self) -> usize {
        10
    }

    fn shape(&self) -> Shape3 {
        Self::SHAPE
    }

    fn generate(&mut self, n: usize) -> Vec<Sample> {
        (0..n).map(|i| (self.render(i % 10), i % 10)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_range() {
        let mut g = SyntheticUsps::new(1);
        let img = g.render(3);
        assert_eq!(img.shape(), Shape3::new(16, 16, 1));
        assert!(img.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SyntheticUsps::new(7).generate(20);
        let b = SyntheticUsps::new(7).generate(20);
        assert_eq!(a, b);
    }

    #[test]
    fn different_digits_differ() {
        // With perturbations frozen per call order, different classes must
        // still produce visibly different images (mean abs diff above noise).
        let mut g1 = SyntheticUsps::with_noise(5, 0.0);
        let mut g2 = SyntheticUsps::with_noise(5, 0.0);
        let zero = g1.render(0);
        let one = g2.render(1);
        let diff: f32 = zero
            .as_slice()
            .iter()
            .zip(one.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / 256.0;
        assert!(diff > 0.05, "digits 0 and 1 too similar: {diff}");
    }

    #[test]
    fn digits_have_ink() {
        let mut g = SyntheticUsps::with_noise(2, 0.0);
        for d in 0..10 {
            let img = g.render(d);
            let ink: f32 = img.as_slice().iter().sum();
            assert!(ink > 5.0, "digit {d} nearly blank (ink={ink})");
        }
    }

    #[test]
    fn generate_cycles_labels() {
        let mut g = SyntheticUsps::new(3);
        let samples = g.generate(25);
        assert_eq!(samples.len(), 25);
        for (i, (_, label)) in samples.iter().enumerate() {
            assert_eq!(*label, i % 10);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn digit_range_checked() {
        SyntheticUsps::new(0).render(10);
    }
}
