/root/repo/target/debug/deps/sched-af83da42f2fe726b.d: crates/bench/src/bin/sched.rs

/root/repo/target/debug/deps/sched-af83da42f2fe726b: crates/bench/src/bin/sched.rs

crates/bench/src/bin/sched.rs:
