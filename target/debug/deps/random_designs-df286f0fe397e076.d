/root/repo/target/debug/deps/random_designs-df286f0fe397e076.d: tests/random_designs.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/librandom_designs-df286f0fe397e076.rmeta: tests/random_designs.rs tests/common/mod.rs Cargo.toml

tests/random_designs.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
