/root/repo/target/release/deps/properties-6008e9331633892a.d: tests/properties.rs

/root/repo/target/release/deps/properties-6008e9331633892a: tests/properties.rs

tests/properties.rs:
