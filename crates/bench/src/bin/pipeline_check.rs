//! Static design verification from the command line: run the
//! [`dfcnn_core::check`] rules over the paper's designs and the whole DSE
//! candidate space, before (and instead of) simulating a single cycle.
//!
//! Three passes, each a gate:
//!
//! 1. **Paper designs** — both test cases must check clean (no errors,
//!    no warnings): the configurations the paper synthesised are exactly
//!    the ones the verifier proves safe.
//! 2. **DSE sweep** — every enumerated TC1 port configuration must check
//!    clean; the explorer relies on the verifier to discard broken
//!    candidates, so a dirty candidate here means the enumeration and
//!    the rules disagree.
//! 3. **Seeded fault** — a deliberately undersized line buffer must be
//!    *rejected* (`buffer-sufficiency`), demonstrating the failure
//!    rendering and guarding against a verifier that rubber-stamps
//!    everything.
//!
//! Exits non-zero on any gate failure, so CI can run it as a check step.
//! Writes `results/pipeline_check.json`.
//!
//! ```text
//! cargo run -p dfcnn-bench --release --bin pipeline_check
//! ```

use dfcnn_bench::{quick_test_case_1, quick_test_case_2, write_json};
use dfcnn_core::check::{check_design, RuleId, Severity};
use dfcnn_core::dse;
use dfcnn_core::graph::{DesignConfig, NetworkDesign};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    design: String,
    errors: usize,
    warnings: usize,
    diagnostics: Vec<String>,
}

fn main() {
    let mut rows = Vec::new();
    let mut failed = false;

    // gate 1: the paper's own designs prove safe, with nothing to waste
    for tc in [quick_test_case_1(), quick_test_case_2()] {
        let report = check_design(&tc.design);
        println!("{}\n{}", tc.name, report.render());
        if !report.is_clean() || !report.warnings().is_empty() {
            eprintln!("FAIL: {} must check clean with no warnings", tc.name);
            failed = true;
        }
        rows.push(Row {
            design: tc.name.to_string(),
            errors: report.errors().len(),
            warnings: report.warnings().len(),
            diagnostics: report.diagnostics.iter().map(|d| d.to_string()).collect(),
        });
    }

    // gate 2: the full TC1 candidate space the explorer would walk
    let tc1 = quick_test_case_1();
    let configs = dse::enumerate_configs(&tc1.network, 6);
    let total = configs.len();
    let mut dirty = 0usize;
    for ports in configs {
        let design = NetworkDesign::new(&tc1.network, ports.clone(), DesignConfig::default())
            .expect("enumerated configs are valid");
        let report = check_design(&design);
        if !report.is_clean() {
            eprintln!("FAIL: DSE candidate {ports:?}\n{}", report.render());
            dirty += 1;
        }
    }
    println!(
        "DSE sweep: {}/{} candidates check clean\n",
        total - dirty,
        total
    );
    if dirty > 0 {
        failed = true;
    }
    rows.push(Row {
        design: format!("dse sweep ({total} candidates)"),
        errors: dirty,
        warnings: 0,
        diagnostics: Vec::new(),
    });

    // gate 3: the verifier must reject a seeded fault, not rubber-stamp it
    let broken_cfg = DesignConfig {
        line_buffer_cap: Some(4),
        ..DesignConfig::default()
    };
    let broken = NetworkDesign::new(
        &tc1.network,
        dfcnn_core::graph::PortConfig::paper_test_case_1(),
        broken_cfg,
    )
    .unwrap();
    let report = check_design(&broken);
    println!("seeded fault (line_buffer_cap = 4)\n{}", report.render());
    if !report.has(Severity::Error, RuleId::BufferSufficiency) {
        eprintln!("FAIL: the undersized line buffer was not rejected");
        failed = true;
    }
    rows.push(Row {
        design: "seeded fault (line_buffer_cap = 4)".to_string(),
        errors: report.errors().len(),
        warnings: report.warnings().len(),
        diagnostics: report.diagnostics.iter().map(|d| d.to_string()).collect(),
    });

    write_json("pipeline_check", &rows);
    if failed {
        std::process::exit(1);
    }
    println!("pipeline_check: all gates passed");
}
