//! FPGA device database.

use crate::resources::Resources;
use serde::{Deserialize, Serialize};

/// An FPGA device: its name and available resources.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Part name.
    pub name: String,
    /// Available resources.
    pub capacity: Resources,
    /// Nominal clock used by the paper's designs (Hz).
    pub clock_hz: u64,
}

impl Device {
    /// The paper's device: Virtex-7 xc7vx485t on the VC707 board, run at
    /// 100 MHz (§V-A). Capacities from the Xilinx 7-series product table:
    /// 607,200 flip-flops, 303,600 LUTs, 1,030 BRAM36 (= 2,060 BRAM18),
    /// 2,800 DSP48E1 slices.
    pub fn xc7vx485t() -> Self {
        Device {
            name: "xc7vx485t (VC707)".to_string(),
            capacity: Resources {
                ff: 607_200,
                lut: 303_600,
                bram18: 2_060,
                dsp: 2_800,
            },
            clock_hz: 100_000_000,
        }
    }

    /// The Altera Stratix V D5 used by the Microsoft baseline \[28\]
    /// (Table II's comparison row). Capacities are approximate equivalents
    /// (ALMs mapped to LUT/FF pairs, M20K blocks to BRAM18); only used for
    /// reporting, never for fitting.
    pub fn stratix_v_d5() -> Self {
        Device {
            name: "Stratix V D5 (approx.)".to_string(),
            capacity: Resources {
                ff: 690_000,
                lut: 345_000,
                bram18: 2_014,
                dsp: 1_590,
            },
            clock_hz: 100_000_000,
        }
    }

    /// Whether a design of the given size fits on this device.
    pub fn fits(&self, used: &Resources) -> bool {
        used.ff <= self.capacity.ff
            && used.lut <= self.capacity.lut
            && used.bram18 <= self.capacity.bram18
            && used.dsp <= self.capacity.dsp
    }

    /// Utilisation of each resource as a fraction of capacity
    /// `(ff, lut, bram, dsp)`.
    pub fn utilisation(&self, used: &Resources) -> [f64; 4] {
        [
            used.ff as f64 / self.capacity.ff as f64,
            used.lut as f64 / self.capacity.lut as f64,
            used.bram18 as f64 / self.capacity.bram18 as f64,
            used.dsp as f64 / self.capacity.dsp as f64,
        ]
    }

    /// The single most-utilised resource as `(name, fraction)` — the
    /// binding constraint for design-space exploration.
    pub fn binding_constraint(&self, used: &Resources) -> (&'static str, f64) {
        const NAMES: [&str; 4] = ["FF", "LUT", "BRAM", "DSP"];
        let u = self.utilisation(used);
        let (i, v) = u
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        (NAMES[i], *v)
    }

    /// Clock period in seconds.
    pub fn clock_period(&self) -> f64 {
        1.0 / self.clock_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtex7_capacities() {
        let d = Device::xc7vx485t();
        assert_eq!(d.capacity.dsp, 2800);
        assert_eq!(d.capacity.bram36(), 1030);
        assert_eq!(d.clock_hz, 100_000_000);
    }

    #[test]
    fn fits_checks_every_resource() {
        let d = Device::xc7vx485t();
        let mut r = Resources::zero();
        assert!(d.fits(&r));
        r.dsp = 2801;
        assert!(!d.fits(&r));
        r.dsp = 2800;
        assert!(d.fits(&r));
        r.bram18 = 9999;
        assert!(!d.fits(&r));
    }

    #[test]
    fn utilisation_fractions() {
        let d = Device::xc7vx485t();
        let r = Resources {
            ff: 303_600,
            lut: 151_800,
            bram18: 206,
            dsp: 1400,
        };
        let u = d.utilisation(&r);
        assert!((u[0] - 0.5).abs() < 1e-9);
        assert!((u[1] - 0.5).abs() < 1e-9);
        assert!((u[2] - 0.1).abs() < 1e-9);
        assert!((u[3] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn binding_constraint_picks_max() {
        let d = Device::xc7vx485t();
        let r = Resources {
            ff: 100,
            lut: 100,
            bram18: 100,
            dsp: 2000,
        };
        let (name, v) = d.binding_constraint(&r);
        assert_eq!(name, "DSP");
        assert!((v - 2000.0 / 2800.0).abs() < 1e-9);
    }

    #[test]
    fn clock_period_is_10ns() {
        assert!((Device::xc7vx485t().clock_period() - 1e-8).abs() < 1e-20);
    }
}
