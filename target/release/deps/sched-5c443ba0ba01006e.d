/root/repo/target/release/deps/sched-5c443ba0ba01006e.d: crates/bench/src/bin/sched.rs

/root/repo/target/release/deps/sched-5c443ba0ba01006e: crates/bench/src/bin/sched.rs

crates/bench/src/bin/sched.rs:
