//! Loom model of the threaded engine's channel protocol.
//!
//! `dfcnn_core::exec::worker_loop` rests on two concurrency invariants
//! that no amount of output checking on the real engine can pin down to
//! the protocol itself:
//!
//! 1. **j-mod-r order preservation** — with replication factor `r`, image
//!    `j` is always served by worker `j mod r`, arrives on the channel
//!    from producer `j mod r_prev` and leaves on the channel to consumer
//!    `j mod r_next`. No tags, no reordering buffer: the dealing rule
//!    alone keeps the batch in input order.
//! 2. **non-blocking free-list** — each worker recycles output buffers
//!    through a `sync_channel` sized `r_next * (depth + 1) + 1` (depth
//!    per consumer link plus one being read at each consumer, plus one in
//!    hand). Consumers return buffers with `try_send`, which must never
//!    block and never fail while the bound holds — a blocking return
//!    path would deadlock the pipeline against its own recycling.
//!
//! This file re-implements that protocol in miniature — same channel
//! topology, same dealing rule, same free-list sizing, trivial compute —
//! and checks both invariants under `loom::model`. The model is
//! deliberately self-contained (no `dfcnn_core` imports): it is the
//! *protocol* being checked, so any future engine change that alters the
//! dealing rule or the free-list bound must be reflected here and
//! re-verified.
//!
//! Built against the vendored `loom` shim, which stress-iterates the
//! closure on real threads rather than enumerating interleavings
//! exhaustively; the model compiles unchanged against the real loom.

use loom::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use loom::thread;

/// Channel depth used by the engine (`ThreadedEngine::channel_depth`).
const DEPTH: usize = 2;

/// A volume travelling down the miniature pipeline: a payload buffer plus
/// the free-list of the worker that owns the buffer (None for borrowed
/// feeder inputs, mirroring `Msg::Borrowed`).
struct Msg {
    payload: Vec<u64>,
    ret: Option<SyncSender<Vec<u64>>>,
}

impl Msg {
    /// Best-effort recycle, exactly like `exec::Msg::recycle`: a full or
    /// disconnected free-list drops the buffer, never blocks. Returns
    /// whether the buffer made it back (the model asserts on this where
    /// the sizing bound guarantees it).
    fn recycle(self) -> bool {
        match self.ret {
            Some(ret) => ret.try_send(self.payload).is_ok(),
            None => false,
        }
    }
}

/// Channel matrix for one stage boundary: `pc` producers × `cc`
/// consumers, `rows[p][c]` feeding `cols[c][p]` — the shape
/// `exec::boundary` builds.
#[allow(clippy::type_complexity)]
fn boundary(pc: usize, cc: usize) -> (Vec<Vec<SyncSender<Msg>>>, Vec<Vec<Receiver<Msg>>>) {
    let mut rows: Vec<Vec<SyncSender<Msg>>> = (0..pc).map(|_| Vec::new()).collect();
    let mut cols: Vec<Vec<Receiver<Msg>>> = (0..cc).map(|_| Vec::new()).collect();
    for row in rows.iter_mut() {
        for col in cols.iter_mut() {
            let (tx, rx) = sync_channel(DEPTH);
            row.push(tx);
            col.push(rx);
        }
    }
    (rows, cols)
}

/// The miniature `worker_loop`: worker `w` of a stage replicated `r_mine`
/// times serves images `j ≡ w (mod r_mine)` in increasing order, doubling
/// each value. Returns how many buffers it reused from its free-list.
fn worker(
    w: usize,
    r_mine: usize,
    rx_col: Vec<Receiver<Msg>>,
    tx_row: Vec<SyncSender<Msg>>,
) -> u64 {
    let (r_prev, r_next) = (rx_col.len(), tx_row.len());
    let (free_tx, free_rx) = sync_channel::<Vec<u64>>(r_next * (DEPTH + 1) + 1);
    let mut reused = 0u64;
    let mut k = 0usize;
    loop {
        let j = w + k * r_mine;
        let msg = match rx_col[j % r_prev].recv() {
            Ok(m) => m,
            Err(_) => break, // upstream done
        };
        let mut out = match free_rx.try_recv() {
            Ok(buf) => {
                reused += 1;
                buf
            }
            Err(_) => Vec::new(),
        };
        out.clear();
        out.extend(msg.payload.iter().map(|&v| v * 2));
        msg.recycle();
        let sent = tx_row[j % r_next].send(Msg {
            payload: out,
            ret: Some(free_tx.clone()),
        });
        if sent.is_err() {
            break; // downstream done
        }
        k += 1;
    }
    reused
}

/// Run a `factors`-replicated pipeline of doubling stages over the batch
/// `0..batch` and return the collected outputs in collection order.
fn run_pipeline(factors: &[usize], batch: usize) -> Vec<u64> {
    let n = factors.len();
    let (mut feed_rows, mut cur_cols) = boundary(1, factors[0]);
    let mut handles = Vec::new();
    for s in 0..n {
        let next_cc = if s + 1 < n { factors[s + 1] } else { 1 };
        let (next_rows, next_cols) = boundary(factors[s], next_cc);
        let in_cols = std::mem::replace(&mut cur_cols, next_cols);
        for (w, (rx_col, tx_row)) in in_cols.into_iter().zip(next_rows).enumerate() {
            let r_mine = factors[s];
            handles.push(thread::spawn(move || worker(w, r_mine, rx_col, tx_row)));
        }
    }
    let coll_col = cur_cols.pop().expect("collector column");
    let r_last = *factors.last().unwrap();
    let collector = thread::spawn(move || {
        let mut outs = Vec::with_capacity(batch);
        for j in 0..batch {
            match coll_col[j % r_last].recv() {
                Ok(msg) => {
                    assert_eq!(msg.payload.len(), 1, "payload width");
                    outs.push(msg.payload[0]);
                    msg.recycle();
                }
                Err(_) => break,
            }
        }
        outs
    });
    let feed_row = feed_rows.pop().expect("feeder row");
    for j in 0..batch {
        if feed_row[j % factors[0]]
            .send(Msg {
                payload: vec![j as u64],
                ret: None,
            })
            .is_err()
        {
            break;
        }
    }
    drop(feed_row);
    let outs = collector.join().expect("collector panicked");
    for h in handles {
        h.join().expect("worker panicked");
    }
    outs
}

/// Invariant 1: the j-mod-r dealing rule preserves input order for every
/// replication shape, including mismatched adjacent factors and more
/// workers than images.
#[test]
fn j_mod_r_dealing_preserves_input_order() {
    loom::model(|| {
        for factors in [
            vec![1, 1],
            vec![2, 3],
            vec![3, 2],
            vec![2, 1, 3],
            vec![4, 4],
        ] {
            for batch in [1usize, 2, 7] {
                let outs = run_pipeline(&factors, batch);
                let expect: Vec<u64> = (0..batch as u64)
                    .map(|j| j << factors.len()) // doubled once per stage
                    .collect();
                assert_eq!(
                    outs, expect,
                    "order violated for factors {factors:?} batch {batch}"
                );
            }
        }
    });
}

/// Invariant 2: the free-list bound `r_next * (depth + 1) + 1` is large
/// enough that a consumer's best-effort `try_send` return never finds the
/// list full — every buffer a producer hands out comes back while the
/// producer still runs, so steady state allocates nothing.
#[test]
fn free_list_bound_accepts_every_returned_buffer() {
    loom::model(|| {
        let r_next = 2usize;
        let (free_tx, free_rx) = sync_channel::<Vec<u64>>(r_next * (DEPTH + 1) + 1);
        let (rows, mut cols) = boundary(1, r_next);
        let row = rows.into_iter().next().unwrap();
        let consumers: Vec<_> = cols
            .drain(..)
            .map(|col| {
                thread::spawn(move || {
                    let mut returned = 0u64;
                    while let Ok(msg) = col[0].recv() {
                        if msg.recycle() {
                            returned += 1;
                        }
                    }
                    returned
                })
            })
            .collect();
        // the producer drives a batch through, drawing from the free list
        // when it can and minting a buffer when it is empty — exactly the
        // worker_loop allocation discipline
        let batch = 16usize;
        let mut minted = 0u64;
        for j in 0..batch {
            let buf = free_rx.try_recv().unwrap_or_else(|_| {
                minted += 1;
                Vec::new()
            });
            row[j % r_next]
                .send(Msg {
                    payload: buf,
                    ret: Some(free_tx.clone()),
                })
                .expect("consumer alive");
        }
        drop(row);
        let returned: u64 = consumers
            .into_iter()
            .map(|h| h.join().expect("consumer panicked"))
            .sum();
        // every returned buffer fit in the free list: nothing was dropped
        // by the best-effort try_send
        assert_eq!(
            returned, batch as u64,
            "a recycle try_send found the list full"
        );
        // the mint count is bounded by the in-flight window, not the batch:
        // past the fill phase the producer runs allocation-free
        assert!(
            minted <= (r_next * (DEPTH + 1) + 1) as u64,
            "minted {minted} buffers — free list failed to recycle"
        );
    });
}

/// A deliberately undersized free-list demonstrates what the bound
/// protects against: returns overflow, `try_send` drops buffers (it must
/// fail rather than block), and the producer keeps allocating.
#[test]
fn undersized_free_list_drops_but_never_blocks() {
    loom::model(|| {
        let (free_tx, free_rx) = sync_channel::<Vec<u64>>(1);
        // fill the list, then overflow it: the second return must fail
        // immediately instead of blocking
        assert!(free_tx.try_send(Vec::new()).is_ok());
        match free_tx.try_send(Vec::new()) {
            Err(TrySendError::Full(_)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        // the producer side still makes progress by minting
        let buf = free_rx.try_recv().expect("one buffer available");
        drop(buf);
    });
}
