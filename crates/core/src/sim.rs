//! The cycle-level execution engine.
//!
//! Every hardware entity (DMA source, port adapters, layer cores, score
//! sink) is an [`Actor`] ticked against a shared [`ChannelSet`]. Channels
//! are two-phase (see [`crate::stream`]), so intra-cycle evaluation order
//! does not matter and each FIFO hop costs one cycle, like registered
//! hardware.
//!
//! The engine is what regenerates **Fig. 6**: stream a batch of images in
//! through the DMA model, record the cycle at which each image's scores
//! leave the sink, and divide. It also doubles as the functional oracle:
//! all values are computed with the [`crate::kernel`] hardware-order
//! numerics.
//!
//! # Two schedulers, one semantics
//!
//! The engine has two interchangeable schedulers selected by
//! [`SimConfig::reference_mode`]:
//!
//! - The **reference sweep** ticks every actor on every cycle in actor
//!   order — the obviously-correct dense loop, kept as the conformance
//!   oracle.
//! - The **event-driven scheduler** (the default) lets actors declare
//!   *quiescence*: after each tick an actor reports whether it could do
//!   anything next cycle ([`Quiescence::Active`]) or is blocked until a
//!   channel changes occupancy and/or a known future cycle arrives
//!   ([`Quiescence::Wait`]). Sleeping actors are skipped, and when nothing
//!   is runnable at all the engine jumps straight to the earliest timed
//!   wake-up. Channel wake-ups are driven directly from pushes and pops
//!   through the [`ChannelSet`]'s waiter lists, which are populated from
//!   the actors' [`Wiring`] declarations.
//!
//! The two schedulers produce **identical** [`SimResult`]s (completions,
//! outputs, cycle counts, actor and FIFO statistics) and identical traces;
//! `tests/engine_conformance.rs` pins this on the paper designs and on
//! randomized ones. The contract that makes this hold: an actor returning
//! [`Quiescence::Wait`] must be a provable no-op on every skipped cycle —
//! a tick that would neither move a value nor change observable state.
//! Spurious wake-ups are always safe (the actor just no-ops), so actors
//! only need their sleep conditions to be *sound*, not tight.

use crate::observe::live::{LiveMetrics, MetricUnit, Sampler};
use crate::stream::{ChannelId, ChannelSet, FifoStats};
use crate::trace::{ActorStallStats, EventKind, Stall, StallRecorder, Trace};

/// Cycles without channel activity after which a run is declared
/// deadlocked — generous: deeper than any pipeline in the designs.
const STALL_LIMIT: u64 = 100_000;

/// Static channel connectivity of an actor, used by the event-driven
/// scheduler to wake it when a channel it reads gains a value or a channel
/// it writes gains space. An actor with the default empty wiring receives
/// no channel wake-ups — which is only sound together with the default
/// always-[`Quiescence::Active`] contract.
#[derive(Clone, Debug, Default)]
pub struct Wiring {
    /// Channels the actor pops/peeks from.
    pub inputs: Vec<ChannelId>,
    /// Channels the actor pushes into.
    pub outputs: Vec<ChannelId>,
}

/// An actor's post-tick scheduling contract for the event-driven engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quiescence {
    /// The actor may make progress next cycle: tick it every cycle until
    /// it reports otherwise. This is the default and always correct.
    Active,
    /// The actor is a guaranteed no-op until one of its wired channels
    /// changes occupancy — or, if a cycle is given, until that cycle
    /// arrives (a pipeline head becoming ready, an II timer elapsing, a
    /// DMA credit refilling). Whichever comes first wins.
    Wait(Option<u64>),
}

/// A hardware entity stepped by the engine.
pub trait Actor {
    /// Stable display name (used in traces and occupancy reports).
    fn name(&self) -> &str;

    /// Advance one cycle: pop/push on `chans`, update internal state.
    /// `trace` may be a no-op sink.
    fn tick(&mut self, cycle: u64, chans: &mut ChannelSet, trace: &mut Trace);

    /// Whether the actor still holds work in flight (pending pipeline
    /// stages, buffered windows, unemitted values). Used for completion
    /// and deadlock detection together with channel occupancy.
    fn busy(&self) -> bool;

    /// Number of initiations performed (compute cores) or values moved
    /// (adapters/endpoints) — the utilisation statistic.
    fn initiations(&self) -> u64;

    /// The channels this actor touches. Default: none (correct only with
    /// the default always-active [`Actor::quiescence`]).
    fn wiring(&self) -> Wiring {
        Wiring::default()
    }

    /// Post-tick scheduling hint for the event-driven engine, evaluated
    /// against the *post-tick* channel state at cycle `now`. The default
    /// keeps the actor ticking every cycle, which is always sound.
    fn quiescence(&self, _now: u64, _chans: &ChannelSet) -> Quiescence {
        Quiescence::Active
    }

    /// Flight-recorder classification of a cycle with no observable work
    /// (no value moved, no initiation), evaluated post-tick. Must be a
    /// pure function of the actor's own state and its *wired* channels —
    /// never of the cycle number — so that it stays constant over any
    /// quiescent span and the event-driven engine can bill skipped cycles
    /// with the classification captured when the actor went to sleep.
    /// The default suits always-[`Quiescence::Active`] helper actors.
    fn stall(&self, _chans: &ChannelSet) -> Stall {
        Stall::Idle
    }

    /// Internal window/line-buffer occupancy high-water mark and its
    /// capacity bound (the `sst` full-buffering bound), for cores that
    /// keep one. `None` for actors without internal buffering.
    fn buffer_hwm(&self) -> Option<(usize, usize)> {
        None
    }
}

/// Engine configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimConfig {
    /// Use the dense every-actor-every-cycle reference sweep instead of
    /// the event-driven scheduler. Slower, but trivially correct — the
    /// conformance oracle.
    pub reference_mode: bool,
}

/// Per-actor utilisation after a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ActorStats {
    /// Actor name.
    pub name: String,
    /// Initiations performed.
    pub initiations: u64,
    /// Internal buffer occupancy high-water mark and its capacity bound,
    /// for actors that keep a window/line buffer.
    pub buffer_hwm: Option<(usize, usize)>,
}

/// Everything known at the moment a run was declared deadlocked: the
/// cycle, collection progress, which actors still held work, and the
/// stall taxonomy gathered so far (empty on untraced runs).
#[derive(Clone, Debug)]
pub struct DeadlockReport {
    /// Cycle at which the stall limit expired.
    pub cycle: u64,
    /// Images collected before the stall.
    pub collected: usize,
    /// Images the batch expected.
    pub expected: usize,
    /// Names of the actors still holding work in flight.
    pub busy: Vec<String>,
    /// Per-actor stall taxonomy up to the deadlock (traced runs only).
    pub stalls: Vec<ActorStallStats>,
}

/// A failed simulation. Both schedulers produce the same error at the
/// same cycle; the message is stable and pinned by tests.
#[derive(Clone, Debug)]
pub enum SimError {
    /// No channel activity for [`STALL_LIMIT`] cycles with images still
    /// outstanding.
    Deadlock(DeadlockReport),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock(d) => write!(
                f,
                "dataflow deadlock at cycle {}: {} of {} images collected, \
                 no channel activity for {STALL_LIMIT} cycles; busy actors: {:?} \
                 — most deadlocks are statically provable: run the design \
                 verifier (`pipeline_check`, crate::check::check_design) for a \
                 pre-simulation diagnosis",
                d.cycle, d.collected, d.expected, d.busy
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of simulating one batch.
#[derive(Clone, Debug, PartialEq)]
pub struct SimResult {
    /// Cycle at which each image's last output value was collected.
    pub completions: Vec<u64>,
    /// The collected class scores per image (pre-normalisation, as the
    /// hardware emits them).
    pub outputs: Vec<Vec<f32>>,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Per-actor utilisation.
    pub actor_stats: Vec<ActorStats>,
    /// Per-channel FIFO statistics.
    pub fifo_stats: Vec<FifoStats>,
    /// Per-actor stall taxonomy counters (flight recorder). Empty when
    /// tracing is disabled; identical between the two schedulers.
    pub stalls: Vec<ActorStallStats>,
}

impl SimResult {
    /// Convert into the host-side measurement record at the given clock.
    pub fn measurement(&self, clock_hz: u64) -> dfcnn_fpga::host::BatchMeasurement {
        dfcnn_fpga::host::BatchMeasurement::new(self.completions.clone(), clock_hz)
    }
}

/// An inline sampling hook: the simulator is single-threaded, so the
/// sampler is driven at cycle boundaries instead of from a thread.
struct SamplerHook {
    sampler: std::rc::Rc<std::cell::RefCell<Sampler>>,
    /// Sampling period in cycles.
    every: u64,
    /// Next cycle boundary at (or past) which to sample.
    next: u64,
}

/// The synchronous dataflow simulator.
pub struct Simulator {
    actors: Vec<Box<dyn Actor>>,
    channels: ChannelSet,
    /// Index of the sink actor (checked for completion).
    expected_images: usize,
    /// Shared handle the sink writes into.
    sink_state: std::rc::Rc<std::cell::RefCell<crate::endpoints::SinkState>>,
    trace: Trace,
    config: SimConfig,
    /// Live telemetry cells mirrored during the run (one per actor).
    live: Option<std::sync::Arc<LiveMetrics>>,
    sampler: Option<SamplerHook>,
}

impl Simulator {
    /// Assemble a simulator from parts (normally done by
    /// [`crate::graph::NetworkDesign::instantiate`]).
    pub fn new(
        actors: Vec<Box<dyn Actor>>,
        channels: ChannelSet,
        expected_images: usize,
        sink_state: std::rc::Rc<std::cell::RefCell<crate::endpoints::SinkState>>,
    ) -> Self {
        Simulator {
            actors,
            channels,
            expected_images,
            sink_state,
            trace: Trace::disabled(),
            config: SimConfig::default(),
            live: None,
            sampler: None,
        }
    }

    /// Enable event tracing (records every initiation/emission).
    pub fn with_trace(mut self) -> Self {
        self.trace = Trace::enabled();
        self
    }

    /// Replace the engine configuration.
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Select the dense reference sweep (the conformance oracle).
    pub fn reference_mode(mut self) -> Self {
        self.config.reference_mode = true;
        self
    }

    /// A fresh live metrics plane matching this simulator's actors (unit:
    /// simulated cycles), for use with [`Simulator::with_live`] or a
    /// [`Sampler`].
    pub fn live_metrics(&self) -> std::sync::Arc<LiveMetrics> {
        LiveMetrics::new(
            MetricUnit::Cycles,
            self.actors.iter().map(|a| a.name().to_string()).collect(),
        )
    }

    /// Mirror the flight recorder's per-cycle classifications, initiation
    /// counts and inter-initiation intervals into `live` while the run
    /// executes. The cells must have been built for this simulator's
    /// actor list (see [`Simulator::live_metrics`]). Works with tracing
    /// on or off; the simulated behaviour is bit-identical either way.
    pub fn with_live(mut self, live: std::sync::Arc<LiveMetrics>) -> Self {
        assert_eq!(
            live.len(),
            self.actors.len(),
            "live metrics must have one cell per actor"
        );
        self.live = Some(live);
        self
    }

    /// Drive `sampler` inline every `every_cycles` cycles (plus one final
    /// flush when the run ends or deadlocks), attaching its metrics plane
    /// as with [`Simulator::with_live`]. Snapshots are timestamped in
    /// simulated cycles.
    pub fn with_sampler(
        mut self,
        sampler: std::rc::Rc<std::cell::RefCell<Sampler>>,
        every_cycles: u64,
    ) -> Self {
        assert!(every_cycles > 0, "sampling period must be positive");
        let live = sampler.borrow().live().clone();
        self = self.with_live(live);
        self.sampler = Some(SamplerHook {
            sampler,
            every: every_cycles,
            next: every_cycles,
        });
        self
    }

    /// Run to completion and return the measurements.
    ///
    /// # Panics
    /// If the design deadlocks (see [`Simulator::try_run`]) — the panic
    /// payload is the rendered [`SimError`] message. Both schedulers
    /// panic at the same cycle with the same message.
    pub fn run(self) -> (SimResult, Trace) {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run to completion, returning a typed [`SimError`] instead of
    /// panicking when the design deadlocks (no channel activity for the
    /// stall limit with images still outstanding). The error carries a
    /// [`DeadlockReport`] with the busy-actor list and the stall taxonomy
    /// collected so far; its message points at the static checker
    /// ([`crate::check::check_design`]), which proves most deadlock
    /// classes before a cycle runs.
    pub fn try_run(self) -> Result<(SimResult, Trace), SimError> {
        if self.config.reference_mode {
            self.run_reference()
        } else {
            self.run_event()
        }
    }

    fn done(&self) -> bool {
        self.sink_state.borrow().completions.len() >= self.expected_images
    }

    fn deadlock_error(&self, cycle: u64, recorder: Option<StallRecorder>) -> SimError {
        let busy: Vec<String> = self
            .actors
            .iter()
            .filter(|a| a.busy())
            .map(|a| a.name().to_string())
            .collect();
        let stalls = recorder.map(|r| r.finish(cycle).0).unwrap_or_default();
        Self::flush_sampler(&self.sampler, cycle);
        SimError::Deadlock(DeadlockReport {
            cycle,
            collected: self.sink_state.borrow().completions.len(),
            expected: self.expected_images,
            busy,
            stalls,
        })
    }

    /// A stall recorder when tracing or live telemetry is on; `None`
    /// keeps the flight recorder strictly zero-cost on unobserved runs.
    /// Live runs attach their cells so every classification is mirrored
    /// as it is recorded.
    fn make_recorder(&self) -> Option<StallRecorder> {
        (self.trace.is_enabled() || self.live.is_some()).then(|| {
            let mut rec =
                StallRecorder::new(self.actors.iter().map(|a| a.name().to_string()).collect());
            if let Some(live) = &self.live {
                rec.attach_live(live.clone());
            }
            rec
        })
    }

    /// Take the boundary sample when the run clock reaches the hook's
    /// next tick. Called with the post-commit cycle from both schedulers;
    /// the event engine's cycle-skip may land past several boundaries, in
    /// which case one (delta-complete) sample covers them.
    fn maybe_sample(sampler: &mut Option<SamplerHook>, cycle: u64) {
        if let Some(hook) = sampler.as_mut() {
            if cycle >= hook.next {
                hook.sampler.borrow_mut().sample(cycle);
                hook.next = (cycle / hook.every + 1) * hook.every;
            }
        }
    }

    /// Final sampler flush so the snapshot series sums to the run totals;
    /// must run *after* the recorder finishes (trailing-sleep back-fill).
    fn flush_sampler(sampler: &Option<SamplerHook>, cycle: u64) {
        if let Some(hook) = sampler {
            hook.sampler.borrow_mut().sample(cycle);
        }
    }

    fn finish(mut self, cycles: u64, recorder: Option<StallRecorder>) -> (SimResult, Trace) {
        let (stalls, tracks) = match recorder {
            Some(r) => {
                let (stats, tracks) = r.finish(cycles);
                let named = self
                    .actors
                    .iter()
                    .zip(tracks)
                    .map(|(a, t)| (a.name().to_string(), t))
                    .collect();
                (stats, named)
            }
            None => (Vec::new(), Vec::new()),
        };
        Self::flush_sampler(&self.sampler, cycles);
        let sink = self.sink_state.borrow();
        let result = SimResult {
            completions: sink.completions.clone(),
            outputs: sink.outputs.clone(),
            cycles,
            actor_stats: self
                .actors
                .iter()
                .map(|a| ActorStats {
                    name: a.name().to_string(),
                    initiations: a.initiations(),
                    buffer_hwm: a.buffer_hwm(),
                })
                .collect(),
            fifo_stats: self.channels.all_stats(),
            stalls,
        };
        drop(sink);
        let mut trace = std::mem::replace(&mut self.trace, Trace::disabled());
        trace.record(cycles, "engine", EventKind::Done);
        trace.set_stall_tracks(tracks);
        (result, trace)
    }

    /// The dense sweep: every actor, every cycle, in actor order.
    fn run_reference(mut self) -> Result<(SimResult, Trace), SimError> {
        let mut recorder = self.make_recorder();
        let mut prev_init: Vec<Option<u64>> = vec![None; self.actors.len()];
        let mut cycle: u64 = 0;
        let mut last_activity_cycle: u64 = 0;
        let mut last_activity = 0u64;
        loop {
            for (i, a) in self.actors.iter_mut().enumerate() {
                if let Some(rec) = recorder.as_mut() {
                    let before_act = self.channels.activity();
                    let before_inits = a.initiations();
                    a.tick(cycle, &mut self.channels, &mut self.trace);
                    let worked =
                        self.channels.activity() != before_act || a.initiations() != before_inits;
                    let class = if worked {
                        Stall::Computing
                    } else {
                        a.stall(&self.channels)
                    };
                    rec.note(i, cycle, class);
                    if let Some(live) = &self.live {
                        let delta = a.initiations() - before_inits;
                        if delta > 0 {
                            let cell = live.cell(i);
                            cell.add_items(delta);
                            if let Some(p) = prev_init[i] {
                                cell.record_interval(cycle - p);
                            }
                            prev_init[i] = Some(cycle);
                        }
                    }
                } else {
                    a.tick(cycle, &mut self.channels, &mut self.trace);
                }
            }
            self.channels.commit_all();
            cycle += 1;
            Self::maybe_sample(&mut self.sampler, cycle);

            if self.done() {
                break;
            }
            let act = self.channels.activity();
            if act != last_activity {
                last_activity = act;
                last_activity_cycle = cycle;
            } else if cycle - last_activity_cycle > STALL_LIMIT {
                return Err(self.deadlock_error(cycle, recorder));
            }
        }
        Ok(self.finish(cycle, recorder))
    }

    /// The event-driven scheduler.
    ///
    /// Bookkeeping per actor: a `wake_now` flag (must tick this cycle) and
    /// a `wake_next` flag (must tick next cycle), both maintained directly
    /// by [`ChannelSet`] pushes/pops through the waiter lists and stored
    /// as 64-actor bitmask words; an `active` flag (ticks every cycle
    /// until it reports [`Quiescence::Wait`]); plus a timed wake-up wheel
    /// for latency hints. The scan runs in ascending actor index like the
    /// reference sweep, so trace event order and intra-cycle pop
    /// visibility match it exactly: a pop at cycle `c` by actor `j` frees
    /// space that same cycle for any writer `w > j` (it ticks after `j` in
    /// the dense sweep too), while a writer `w < j` only observes the
    /// space at `c + 1`. Pushes become visible to readers after the
    /// commit, hence always wake at `c + 1`.
    ///
    /// Set `DFCNN_SCHED_STATS=1` to print scheduler efficiency counters
    /// (non-skipped cycles and actual ticks vs the dense sweep's
    /// `cycles × actors`) to stderr after the run.
    fn run_event(mut self) -> Result<(SimResult, Trace), SimError> {
        let mut recorder = self.make_recorder();
        let mut prev_init: Vec<Option<u64>> = vec![None; self.actors.len()];
        let n = self.actors.len();
        for (i, a) in self.actors.iter().enumerate() {
            let w = a.wiring();
            for ch in w.inputs {
                self.channels.register_reader(ch, i);
            }
            for ch in w.outputs {
                self.channels.register_writer(ch, i);
            }
        }
        self.channels.enable_wake_tracking(n);
        for i in 0..n {
            self.channels.set_wake_now(i);
        }

        // runnable-every-cycle actors, same bit layout as the wake words
        let mut active = vec![0u64; self.channels.wake_words()];
        let mut timed: std::collections::BTreeMap<u64, Vec<usize>> =
            std::collections::BTreeMap::new();

        let mut cycle: u64 = 0;
        let mut last_activity_cycle: u64 = 0;
        let mut last_activity = 0u64;
        let mut ticks = 0u64;
        let mut busy_cycles = 0u64;
        loop {
            busy_cycles += 1;
            // timed wake-ups due now (spurious ones are harmless no-ops)
            while let Some((&t, _)) = timed.iter().next() {
                if t > cycle {
                    break;
                }
                for i in timed.remove(&t).unwrap() {
                    self.channels.set_wake_now(i);
                }
            }

            // Word-wise scan in ascending actor index. Same-cycle wakes
            // only ever target actors *after* the one being ticked (pops
            // wake writers `w > cur`), so re-reading the word after each
            // tick — masked by the already-processed bits — picks up
            // forward wakes without ever revisiting an actor, and earlier
            // words can never gain bits once passed.
            for (w, aw) in active.iter_mut().enumerate() {
                let mut processed: u64 = 0;
                loop {
                    let bits = (self.channels.wake_now_word(w) | *aw) & !processed;
                    if bits == 0 {
                        break;
                    }
                    let bit = bits.trailing_zeros();
                    processed |= 1u64 << bit;
                    self.channels.clear_wake_now(w, bit);
                    let i = (w << 6) | bit as usize;
                    ticks += 1;
                    self.channels.begin_tick(i);
                    if let Some(rec) = recorder.as_mut() {
                        let before_act = self.channels.activity();
                        let before_inits = self.actors[i].initiations();
                        self.actors[i].tick(cycle, &mut self.channels, &mut self.trace);
                        // the post-tick classification both labels this
                        // tick (when it did no observable work) and is
                        // captured as the class skipped cycles will be
                        // billed to if the actor now sleeps
                        let st = self.actors[i].stall(&self.channels);
                        let worked = self.channels.activity() != before_act
                            || self.actors[i].initiations() != before_inits;
                        rec.note(i, cycle, if worked { Stall::Computing } else { st });
                        rec.set_sleep(i, st);
                        if let Some(live) = &self.live {
                            let delta = self.actors[i].initiations() - before_inits;
                            if delta > 0 {
                                let cell = live.cell(i);
                                cell.add_items(delta);
                                if let Some(p) = prev_init[i] {
                                    cell.record_interval(cycle - p);
                                }
                                prev_init[i] = Some(cycle);
                            }
                        }
                    } else {
                        self.actors[i].tick(cycle, &mut self.channels, &mut self.trace);
                    }
                    match self.actors[i].quiescence(cycle, &self.channels) {
                        Quiescence::Active => *aw |= 1u64 << bit,
                        Quiescence::Wait(hint) => {
                            *aw &= !(1u64 << bit);
                            if let Some(t) = hint {
                                if t <= cycle + 1 {
                                    self.channels.set_wake_next(i);
                                } else {
                                    timed.entry(t).or_default().push(i);
                                }
                            }
                        }
                    }
                }
            }

            self.channels.commit_dirty();
            let post = cycle + 1;
            Self::maybe_sample(&mut self.sampler, post);

            if self.done() {
                cycle = post;
                break;
            }
            // stall detection — same arithmetic as the reference sweep
            let act = self.channels.activity();
            if act != last_activity {
                last_activity = act;
                last_activity_cycle = post;
            } else if post - last_activity_cycle > STALL_LIMIT {
                return Err(self.deadlock_error(post, recorder));
            }

            let has_next = active.iter().any(|&a| a != 0) || self.channels.wake_next_any();
            if has_next {
                cycle = post;
            } else if let Some((&t, _)) = timed.iter().next() {
                // cycle-skip: every skipped cycle is a guaranteed no-op for
                // every actor, so jump straight to the earliest wake-up —
                // unless the reference sweep would have hit the stall limit
                // first, in which case deadlock at the cycle it would.
                if t - last_activity_cycle > STALL_LIMIT {
                    return Err(
                        self.deadlock_error(last_activity_cycle + STALL_LIMIT + 1, recorder)
                    );
                }
                cycle = t;
            } else {
                // nothing will ever run again; the reference sweep would
                // spin quietly to the stall limit and fail there
                return Err(self.deadlock_error(last_activity_cycle + STALL_LIMIT + 1, recorder));
            }
            self.channels.advance_wakes();
        }
        if std::env::var_os("DFCNN_SCHED_STATS").is_some() {
            eprintln!(
                "[event] cycles={cycle} busy_cycles={busy_cycles} ticks={ticks} \
                 dense_ticks={}",
                cycle * n as u64
            );
        }
        Ok(self.finish(cycle, recorder))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoints::SinkState;
    use crate::stream::ChannelId;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Emits `count` increasing values, one per cycle, on its channel.
    struct TestSource {
        ch: ChannelId,
        next: u64,
        count: u64,
    }
    impl Actor for TestSource {
        fn name(&self) -> &str {
            "test-source"
        }
        fn tick(&mut self, _cycle: u64, chans: &mut ChannelSet, _t: &mut Trace) {
            if self.next < self.count && chans.can_push(self.ch) {
                chans.push(self.ch, self.next as f32);
                self.next += 1;
            }
        }
        fn busy(&self) -> bool {
            self.next < self.count
        }
        fn initiations(&self) -> u64 {
            self.next
        }
        fn wiring(&self) -> Wiring {
            Wiring {
                inputs: vec![],
                outputs: vec![self.ch],
            }
        }
        fn quiescence(&self, _now: u64, chans: &ChannelSet) -> Quiescence {
            if self.next >= self.count {
                Quiescence::Wait(None) // drained: never ticks again
            } else if chans.can_push(self.ch) {
                Quiescence::Active
            } else {
                Quiescence::Wait(None) // backpressured: wake on pop
            }
        }
    }

    /// Doubles each value with a fixed pipeline delay.
    struct Doubler {
        inp: ChannelId,
        out: ChannelId,
        pipe: std::collections::VecDeque<(u64, f32)>,
        delay: u64,
        inits: u64,
    }
    impl Actor for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }
        fn tick(&mut self, cycle: u64, chans: &mut ChannelSet, _t: &mut Trace) {
            if let Some(&(ready, v)) = self.pipe.front() {
                if cycle >= ready && chans.can_push(self.out) {
                    chans.push(self.out, v);
                    self.pipe.pop_front();
                }
            }
            if self.pipe.len() < 4 {
                if let Some(v) = chans.pop(self.inp) {
                    self.pipe.push_back((cycle + self.delay, v * 2.0));
                    self.inits += 1;
                }
            }
        }
        fn busy(&self) -> bool {
            !self.pipe.is_empty()
        }
        fn initiations(&self) -> u64 {
            self.inits
        }
        fn wiring(&self) -> Wiring {
            Wiring {
                inputs: vec![self.inp],
                outputs: vec![self.out],
            }
        }
        fn quiescence(&self, now: u64, chans: &ChannelSet) -> Quiescence {
            if let Some(&(ready, _)) = self.pipe.front() {
                if ready <= now + 1 && chans.can_push(self.out) {
                    return Quiescence::Active; // emits next cycle
                }
            }
            if self.pipe.len() < 4 && chans.peek(self.inp).is_some() {
                return Quiescence::Active; // accepts next cycle
            }
            match self.pipe.front() {
                // head still in the pipeline: timed wake (channel wake-ups
                // stay live, so an early push/pop re-activates sooner)
                Some(&(ready, _)) if ready > now + 1 => Quiescence::Wait(Some(ready)),
                // head ready but output full, or idle: channel wake only
                _ => Quiescence::Wait(None),
            }
        }
    }

    /// Collects `per_image` values per "image" into the sink state.
    struct TestSink {
        inp: ChannelId,
        state: Rc<RefCell<SinkState>>,
        per_image: usize,
        current: Vec<f32>,
    }
    impl Actor for TestSink {
        fn name(&self) -> &str {
            "test-sink"
        }
        fn tick(&mut self, cycle: u64, chans: &mut ChannelSet, _t: &mut Trace) {
            if let Some(v) = chans.pop(self.inp) {
                self.current.push(v);
                if self.current.len() == self.per_image {
                    let mut s = self.state.borrow_mut();
                    s.outputs.push(std::mem::take(&mut self.current));
                    s.completions.push(cycle);
                }
            }
        }
        fn busy(&self) -> bool {
            !self.current.is_empty()
        }
        fn initiations(&self) -> u64 {
            0
        }
        fn wiring(&self) -> Wiring {
            Wiring {
                inputs: vec![self.inp],
                outputs: vec![],
            }
        }
        fn quiescence(&self, _now: u64, chans: &ChannelSet) -> Quiescence {
            if chans.peek(self.inp).is_some() {
                Quiescence::Active
            } else {
                Quiescence::Wait(None)
            }
        }
    }

    fn build(count: u64, per_image: usize, delay: u64) -> Simulator {
        let mut chans = ChannelSet::new();
        let a = chans.alloc(4);
        let b = chans.alloc(4);
        let state = Rc::new(RefCell::new(SinkState::default()));
        let actors: Vec<Box<dyn Actor>> = vec![
            Box::new(TestSource {
                ch: a,
                next: 0,
                count,
            }),
            Box::new(Doubler {
                inp: a,
                out: b,
                pipe: Default::default(),
                delay,
                inits: 0,
            }),
            Box::new(TestSink {
                inp: b,
                state: state.clone(),
                per_image,
                current: Vec::new(),
            }),
        ];
        Simulator::new(actors, chans, count as usize / per_image, state)
    }

    fn pipeline(count: u64, per_image: usize, delay: u64) -> (SimResult, Trace) {
        build(count, per_image, delay).run()
    }

    #[test]
    fn values_flow_and_double() {
        let (res, _) = pipeline(8, 2, 0);
        assert_eq!(res.completions.len(), 4);
        assert_eq!(res.outputs[0], vec![0.0, 2.0]);
        assert_eq!(res.outputs[3], vec![12.0, 14.0]);
    }

    #[test]
    fn pipeline_delay_shifts_completions() {
        let (fast, _) = pipeline(4, 2, 0);
        let (slow, _) = pipeline(4, 2, 20);
        assert!(slow.completions[0] > fast.completions[0] + 15);
        // steady-state throughput unchanged (pipelined delay, not II)
        let gap_fast = fast.completions[1] - fast.completions[0];
        let gap_slow = slow.completions[1] - slow.completions[0];
        assert_eq!(gap_fast, gap_slow);
    }

    #[test]
    fn completions_monotone() {
        let (res, _) = pipeline(20, 2, 3);
        assert!(res.completions.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn stats_populated() {
        let (res, _) = pipeline(8, 2, 1);
        assert_eq!(res.actor_stats.len(), 3);
        assert_eq!(res.actor_stats[1].initiations, 8);
        assert_eq!(res.fifo_stats.len(), 2);
        assert_eq!(res.fifo_stats[0].pushes, 8);
    }

    #[test]
    fn measurement_roundtrip() {
        let (res, _) = pipeline(8, 2, 0);
        let m = res.measurement(100_000_000);
        assert_eq!(m.batch, 4);
    }

    #[test]
    fn event_mode_matches_reference_exactly() {
        for (count, per_image, delay) in [(8, 2, 0), (8, 2, 5), (20, 2, 3), (12, 3, 17), (4, 4, 40)]
        {
            let (ev, _) = build(count, per_image, delay).run();
            let (rf, _) = build(count, per_image, delay).reference_mode().run();
            assert_eq!(ev, rf, "count={count} per_image={per_image} delay={delay}");
        }
    }

    #[test]
    fn event_mode_traces_match_reference() {
        let (ev_res, ev_trace) = build(12, 3, 9).with_trace().run();
        let (rf_res, rf_trace) = build(12, 3, 9).with_trace().reference_mode().run();
        assert_eq!(ev_res, rf_res);
        assert_eq!(ev_trace.events(), rf_trace.events());
        assert_eq!(ev_trace.stall_tracks(), rf_trace.stall_tracks());
        // every cycle of every actor is classified exactly once
        assert_eq!(ev_res.stalls.len(), 3);
        for s in &ev_res.stalls {
            assert_eq!(s.total(), ev_res.cycles, "{}", s.name);
        }
    }

    #[test]
    fn untraced_runs_skip_the_flight_recorder() {
        let (res, trace) = pipeline(8, 2, 1);
        assert!(res.stalls.is_empty());
        assert!(trace.stall_tracks().is_empty());
    }

    #[test]
    fn live_cells_reconcile_with_recorder_in_both_schedulers() {
        for reference in [false, true] {
            let mut sim = build(12, 3, 9).with_trace();
            if reference {
                sim = sim.reference_mode();
            }
            let live = sim.live_metrics();
            let (res, _) = sim.with_live(live.clone()).run();
            assert_eq!(live.len(), res.stalls.len());
            for (i, s) in res.stalls.iter().enumerate() {
                let c = live.cell(i).counters();
                assert_eq!(c.service, s.computing, "{}", s.name);
                assert_eq!(c.queue_wait, s.starved_total(), "{}", s.name);
                assert_eq!(c.send_wait, s.backpressured_total(), "{}", s.name);
                assert_eq!(c.idle, s.idle, "{}", s.name);
                assert_eq!(c.items, res.actor_stats[i].initiations, "{}", s.name);
            }
        }
    }

    #[test]
    fn live_telemetry_does_not_change_the_simulation() {
        let (plain, plain_trace) = build(12, 3, 9).with_trace().run();
        let sim = build(12, 3, 9).with_trace();
        let live = sim.live_metrics();
        let (observed, observed_trace) = sim.with_live(live).run();
        assert_eq!(plain, observed);
        assert_eq!(plain_trace.events(), observed_trace.events());
        assert_eq!(plain_trace.stall_tracks(), observed_trace.stall_tracks());
    }

    #[test]
    fn sampler_deltas_sum_to_run_totals() {
        use crate::observe::live::sum_deltas;
        for reference in [false, true] {
            let mut sim = build(20, 2, 3);
            if reference {
                sim = sim.reference_mode();
            }
            let live = sim.live_metrics();
            let sampler = Rc::new(RefCell::new(Sampler::new(live.clone())));
            let (res, _) = sim.with_sampler(sampler.clone(), 7).run();
            let sampler = Rc::try_unwrap(sampler)
                .expect("run dropped its handle")
                .into_inner();
            let snaps = sampler.into_snapshots();
            assert!(snaps.len() >= 2, "mid-run ticks plus the final flush");
            assert!(snaps.windows(2).all(|w| w[0].at <= w[1].at));
            assert_eq!(snaps.last().unwrap().at, res.cycles);
            let summed = sum_deltas(&snaps);
            // live runs record the stall taxonomy even without a trace
            assert_eq!(res.stalls.len(), summed.len());
            for (i, (name, acc)) in summed.iter().enumerate() {
                assert_eq!(name, &res.stalls[i].name);
                assert_eq!(acc.service, res.stalls[i].computing);
                assert_eq!(acc.queue_wait, res.stalls[i].starved_total());
                assert_eq!(acc.send_wait, res.stalls[i].backpressured_total());
                assert_eq!(acc.idle, res.stalls[i].idle);
                assert_eq!(acc.items, res.actor_stats[i].initiations);
            }
        }
    }

    #[test]
    fn long_pipeline_delay_exercises_cycle_skip() {
        // delay 40 with a 4-deep pipe forces long quiet stretches where
        // only the timed wheel can advance the clock
        let (ev, _) = build(8, 2, 40).run();
        let (rf, _) = build(8, 2, 40).reference_mode().run();
        assert_eq!(ev, rf);
    }
}
