/root/repo/target/debug/deps/dfcnn-d94322ea92ae399f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdfcnn-d94322ea92ae399f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
