/root/repo/target/debug/deps/dfcnn_core-5486d6e62f4556c8.d: crates/core/src/lib.rs crates/core/src/codegen.rs crates/core/src/dse.rs crates/core/src/endpoints.rs crates/core/src/exec.rs crates/core/src/flow.rs crates/core/src/graph.rs crates/core/src/kernel.rs crates/core/src/layer/mod.rs crates/core/src/layer/conv_core.rs crates/core/src/layer/fc_core.rs crates/core/src/layer/pool_core.rs crates/core/src/multi.rs crates/core/src/port.rs crates/core/src/sim.rs crates/core/src/sst.rs crates/core/src/stream.rs crates/core/src/trace.rs crates/core/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libdfcnn_core-5486d6e62f4556c8.rmeta: crates/core/src/lib.rs crates/core/src/codegen.rs crates/core/src/dse.rs crates/core/src/endpoints.rs crates/core/src/exec.rs crates/core/src/flow.rs crates/core/src/graph.rs crates/core/src/kernel.rs crates/core/src/layer/mod.rs crates/core/src/layer/conv_core.rs crates/core/src/layer/fc_core.rs crates/core/src/layer/pool_core.rs crates/core/src/multi.rs crates/core/src/port.rs crates/core/src/sim.rs crates/core/src/sst.rs crates/core/src/stream.rs crates/core/src/trace.rs crates/core/src/verify.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/codegen.rs:
crates/core/src/dse.rs:
crates/core/src/endpoints.rs:
crates/core/src/exec.rs:
crates/core/src/flow.rs:
crates/core/src/graph.rs:
crates/core/src/kernel.rs:
crates/core/src/layer/mod.rs:
crates/core/src/layer/conv_core.rs:
crates/core/src/layer/fc_core.rs:
crates/core/src/layer/pool_core.rs:
crates/core/src/multi.rs:
crates/core/src/port.rs:
crates/core/src/sim.rs:
crates/core/src/sst.rs:
crates/core/src/stream.rs:
crates/core/src/trace.rs:
crates/core/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
