//! Ablation: **high-level pipelining on vs off** (§IV-C).
//!
//! The paper's claim: "At steady state, all the different layers of the
//! network will be concurrently active and computing. This effect becomes
//! especially beneficial when batches of multiple images feed the
//! network." This ablation makes the benefit explicit by comparing
//!
//! - *pipelined*: one simulation streaming the whole batch back-to-back
//!   (the paper's mode), against
//! - *flushed*: the same batch as independent single-image runs, i.e. the
//!   pipeline drains between images (what a layer-at-a-time accelerator
//!   with host round-trips effectively does — the related-work §I
//!   criticism of non-dataflow designs).
//!
//! It also runs the threaded engine against its sequential twin to show
//! the same effect as real wall-clock speedup on the host CPU.
//!
//! ```text
//! cargo run -p dfcnn-bench --release --bin ablation_pipeline
//! ```

use dfcnn_bench::{quick_test_case_1, quick_test_case_2, write_json, TestCase};
use dfcnn_core::exec::ThreadedEngine;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    case: String,
    batch: usize,
    pipelined_us_per_image: f64,
    flushed_us_per_image: f64,
    speedup: f64,
}

fn simulate(tc: &TestCase, batch: usize) -> Row {
    let clock = tc.design.config().clock_hz;
    let images: Vec<_> = (0..batch)
        .map(|i| tc.images[i % tc.images.len()].clone())
        .collect();
    let (piped, _) = tc.design.instantiate(&images).run();
    let pipelined = piped.measurement(clock).mean_time_per_image_us();
    // flushed: each image is its own run; total = sum of per-image runs
    let mut total_cycles = 0u64;
    for img in &images {
        let (r, _) = tc.design.instantiate(std::slice::from_ref(img)).run();
        total_cycles += r.cycles;
    }
    let flushed = total_cycles as f64 / clock as f64 / batch as f64 * 1e6;
    Row {
        case: tc.name.to_string(),
        batch,
        pipelined_us_per_image: pipelined,
        flushed_us_per_image: flushed,
        speedup: flushed / pipelined,
    }
}

fn main() {
    println!("== Ablation: high-level pipeline vs per-image flush ==\n");
    let mut rows = Vec::new();
    for tc in [quick_test_case_1(), quick_test_case_2()] {
        for batch in [4usize, 16] {
            let r = simulate(&tc, batch);
            println!(
                "{:<13} batch {:>3}: pipelined {:>9.3} µs/img, flushed {:>9.3} µs/img -> {:.2}x",
                r.case, r.batch, r.pipelined_us_per_image, r.flushed_us_per_image, r.speedup
            );
            rows.push(r);
        }
    }
    // Pipelining gain is bounded by latency / bottleneck-interval: Test
    // Case 1 has balanced stages (big win); Test Case 2's conv1 dominates
    // its single-image latency, so overlap can only shave the small
    // fill/drain fraction — visible in the paper's Fig. 6 as TC2's much
    // flatter curve.
    assert!(
        rows.iter().all(|r| r.speedup > 1.0),
        "pipelining must never hurt"
    );
    assert!(
        rows.iter()
            .any(|r| r.case.ends_with('1') && r.batch == 16 && r.speedup > 1.5),
        "balanced-stage TC1 must show a substantial pipelining win"
    );

    println!("\n== Threaded engine: real wall-clock pipelining on the host CPU ==\n");
    // Test Case 1 has the balanced stages; its host-CPU stage costs are
    // dominated by the two convolutions, so the threaded pipeline overlaps
    // them across consecutive images.
    let tc = quick_test_case_1();
    let engine = ThreadedEngine::new(&tc.design);
    let images: Vec<_> = (0..32)
        .map(|i| tc.images[i % tc.images.len()].clone())
        .collect();
    // warm up thread spawn paths once
    let _ = engine.run(&images[..2]);
    let par = engine.run(&images);
    let seq = engine.run_sequential(&images);
    assert_eq!(par.outputs, seq.outputs, "engines must agree bit-for-bit");
    let speedup = seq.total.as_secs_f64() / par.total.as_secs_f64();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "TC1 batch 32: threaded {:?} vs sequential {:?} -> {:.2}x wall-clock speedup \
         ({} pipeline stages on {} CPU core(s))",
        par.total,
        seq.total,
        speedup,
        engine.stage_count(),
        cores
    );
    if cores < 2 {
        println!(
            "note: a single CPU core cannot overlap pipeline stages — expect ~1.0x here; \
             the cycle-level comparison above is the hardware-pipelining result"
        );
    } else {
        assert!(
            speedup > 1.1,
            "with {cores} cores the threaded pipeline should overlap stages"
        );
    }
    write_json("ablation_pipeline", &rows);
}
