//! The static verifier's acceptance contract (see `dfcnn::core::check`):
//!
//! - **Soundness on good designs**: both paper test cases, every DSE
//!   candidate, and a 50-design random corpus must check clean — the
//!   verifier never cries wolf on a design the simulator runs happily.
//! - **Completeness on seeded faults**: each seeded violation class
//!   (undersized line buffer, omitted boundary adapter, malformed
//!   replication plan) must be rejected with its expected rule id, and
//!   the rejection is independently confirmed by the corresponding
//!   engine actually deadlocking or refusing the run. The checker's
//!   verdict and the dynamic outcome must agree in both directions.
//! - **Static/dynamic agreement**: a drift report measured from a clean
//!   traced run must cross-check against the analytical model with no
//!   diagnostics.

mod common;

use common::{random_ports, random_spec, residual_design};
use dfcnn::core::exec::ReplicationPlan;
use dfcnn::core::observe::DriftReport;
use dfcnn::core::{check_drift, check_replication, SimError};
use dfcnn::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tc1_network() -> Network {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    NetworkSpec::test_case_1().build(&mut rng)
}

fn batch(design: &NetworkDesign, n: usize, seed: u64) -> Vec<Tensor3<f32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            dfcnn::tensor::init::random_volume(&mut rng, design.network().input_shape(), 0.0, 1.0)
        })
        .collect()
}

#[test]
fn both_paper_designs_check_clean() {
    let tc1 = NetworkDesign::new(
        &tc1_network(),
        PortConfig::paper_test_case_1(),
        DesignConfig::default(),
    )
    .unwrap();
    let report = check_design(&tc1);
    assert!(report.is_clean(), "TC1: {}", report.render());
    assert!(report.warnings().is_empty(), "TC1: {}", report.render());

    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let net2 = NetworkSpec::test_case_2().build(&mut rng);
    let tc2 = NetworkDesign::new(
        &net2,
        PortConfig::paper_test_case_2(),
        DesignConfig::default(),
    )
    .unwrap();
    let report = check_design(&tc2);
    assert!(report.is_clean(), "TC2: {}", report.render());
    assert!(report.warnings().is_empty(), "TC2: {}", report.render());
}

#[test]
fn every_dse_candidate_checks_clean() {
    let net = tc1_network();
    for ports in dse::enumerate_configs(&net, 6) {
        let design = NetworkDesign::new(&net, ports.clone(), DesignConfig::default())
            .expect("enumerated configs are valid");
        let report = check_design(&design);
        assert!(report.is_clean(), "ports {ports:?}: {}", report.render());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(50))]

    /// Soundness over the random corpus: any design the builder accepts
    /// is proven safe by the verifier — no false alarms.
    #[test]
    fn random_conformant_designs_check_clean(
        spec in random_spec(),
        seed in 0u64..10_000,
        fabric_normalization in proptest::bool::ANY,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let network = spec.build(&mut rng);
        let ports = random_ports(&spec, seed ^ 0x5EED);
        let config = DesignConfig { fabric_normalization, ..DesignConfig::default() };
        let design = NetworkDesign::new(&network, ports, config)
            .expect("random divisor config must validate");
        let report = check_design(&design);
        prop_assert!(report.is_clean(), "{}", report.render());
        prop_assert!(report.warnings().is_empty(), "{}", report.render());
    }
}

/// Seeded fault 1: a line buffer below the SST full-buffering bound. The
/// verifier must reject it as `buffer-sufficiency`, and the simulator
/// must confirm the verdict by deadlocking before the first window.
#[test]
fn undersized_line_buffer_is_rejected_and_confirmed_by_deadlock() {
    let config = DesignConfig {
        line_buffer_cap: Some(4), // TC1 conv1 needs (5-1)*16 + 5 = 69/port
        ..DesignConfig::default()
    };
    let design =
        NetworkDesign::new(&tc1_network(), PortConfig::paper_test_case_1(), config).unwrap();

    let report = check_design(&design);
    assert!(
        report.has(Severity::Error, RuleId::BufferSufficiency),
        "{}",
        report.render()
    );

    let images = batch(&design, 1, 21);
    let err = design
        .instantiate(&images)
        .try_run()
        .expect_err("the simulator must confirm the static verdict");
    let SimError::Deadlock(d) = &err;
    assert_eq!(d.collected, 0, "no image can complete");
    assert!(err.to_string().contains("deadlock"), "{err}");
    assert!(err.to_string().contains("pipeline_check"), "{err}");
}

/// Seeded fault 2: adjacent cores with mismatched port counts and no
/// adapter between them. The verifier must reject the boundary as
/// `rate-conservation`, and the simulator must confirm by starving.
#[test]
fn omitted_adapter_is_rejected_and_confirmed_by_deadlock() {
    let ports = PortConfig {
        layers: vec![
            LayerPorts {
                in_ports: 1,
                out_ports: 2,
            },
            LayerPorts::SINGLE,
            LayerPorts::SINGLE,
            LayerPorts::SINGLE,
        ],
    };
    let config = DesignConfig {
        omit_adapters: true,
        ..DesignConfig::default()
    };
    let design = NetworkDesign::new(&tc1_network(), ports.clone(), config).unwrap();

    let report = check_design(&design);
    assert!(
        report.has(Severity::Error, RuleId::RateConservation),
        "{}",
        report.render()
    );

    let images = batch(&design, 1, 22);
    let err = design
        .instantiate(&images)
        .try_run()
        .expect_err("the simulator must confirm the static verdict");
    assert!(err.to_string().contains("deadlock"), "{err}");

    // control: the same port choice with adapters inserted is clean and
    // simulates to completion — the fault is the omission, not the ports
    let healthy = NetworkDesign::new(&tc1_network(), ports, DesignConfig::default()).unwrap();
    assert!(check_design(&healthy).is_clean());
    let images = batch(&healthy, 1, 22);
    let (res, _) = healthy
        .instantiate(&images)
        .try_run()
        .expect("healthy design must complete");
    assert_eq!(res.outputs.len(), 1);
}

/// Seeded fault 4: a skip-path FIFO too shallow to cover the sibling
/// conv's line-buffer holdback. On the residual block the trunk fork
/// feeds a conv branch (which holds back (3-1)·8+3 pixels × 2 channels =
/// 38 values while filling its line buffer) and an identity skip; with
/// the skip FIFO clamped to two slots the fork backpressures before the
/// eltwise-add ever sees a token. The verifier must reject it as
/// `reconvergence-buffering`, and the simulator must confirm the verdict
/// by deadlocking before the first output.
#[test]
fn undersized_skip_fifo_is_rejected_and_confirmed_by_deadlock() {
    let design = residual_design(DesignConfig {
        skip_fifo_cap: Some(2),
        ..DesignConfig::default()
    });

    let report = check_design(&design);
    assert!(
        report.has(Severity::Error, RuleId::ReconvergenceBuffering),
        "{}",
        report.render()
    );
    assert!(
        report.render().contains("error[reconvergence-buffering]"),
        "{}",
        report.render()
    );

    let images = batch(&design, 1, 25);
    let err = design
        .instantiate(&images)
        .try_run()
        .expect_err("the simulator must confirm the static verdict");
    let SimError::Deadlock(d) = &err;
    assert_eq!(d.collected, 0, "no image can complete");
    assert!(err.to_string().contains("deadlock"), "{err}");

    // control: the same graph with the builder's auto-sized skip FIFO is
    // clean and simulates to completion — the fault is the clamp
    let healthy = residual_design(DesignConfig::default());
    let report = check_design(&healthy);
    assert!(report.is_clean(), "{}", report.render());
    let images = batch(&healthy, 2, 25);
    let (res, _) = healthy
        .instantiate(&images)
        .try_run()
        .expect("healthy residual block must complete");
    assert_eq!(res.outputs.len(), 2);
}

/// Seeded fault 3: malformed replication plans. The verifier must reject
/// them as `replication-soundness`, and the threaded engine must confirm
/// by refusing to run them.
#[test]
fn bad_replication_plans_are_rejected_and_confirmed_by_the_engine() {
    let design = NetworkDesign::new(
        &tc1_network(),
        PortConfig::paper_test_case_1(),
        DesignConfig::default(),
    )
    .unwrap();
    let engine = ThreadedEngine::new(&design);
    let images = batch(&design, 2, 23);

    // wrong stage count
    let short = ReplicationPlan {
        factors: vec![1, 1],
    };
    let diags = check_replication(&short, engine.stage_count());
    assert!(
        diags
            .iter()
            .any(|d| d.severity == Severity::Error && d.rule == RuleId::ReplicationSoundness),
        "{diags:?}"
    );
    let refused = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.run_with_plan(&images, &short)
    }));
    assert!(refused.is_err(), "engine must refuse a short plan");

    // zero factor: a residue class with no worker
    let zero = ReplicationPlan {
        factors: vec![1, 0, 1, 1, 1],
    };
    let diags = check_replication(&zero, engine.stage_count());
    assert!(
        diags
            .iter()
            .any(|d| d.severity == Severity::Error && d.rule == RuleId::ReplicationSoundness),
        "{diags:?}"
    );
    let refused = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.run_with_plan(&images, &zero)
    }));
    assert!(refused.is_err(), "engine must refuse a zero factor");

    // a legal plan passes both the checker and the engine
    let good = ReplicationPlan::uniform(engine.stage_count());
    assert!(check_replication(&good, engine.stage_count()).is_empty());
    let (res, _) = engine.run_with_plan(&images, &good);
    assert_eq!(res.outputs.len(), 2);
}

/// Static/dynamic agreement: a drift report measured from a clean run
/// cross-checks against the analytical model with zero diagnostics.
#[test]
fn measured_drift_report_cross_checks_clean() {
    let design = NetworkDesign::new(
        &tc1_network(),
        PortConfig::paper_test_case_1(),
        DesignConfig::default(),
    )
    .unwrap();
    assert!(check_design(&design).is_clean());
    // batch 8 like tests/flight_recorder.rs: the steady-state interval
    // estimator needs enough images for the fill transient to amortise
    let images = batch(&design, 8, 24);
    let (res, trace) = design.instantiate(&images).with_trace().run();
    let drift = DriftReport::new(&design, &res, &trace);
    let diags = check_drift(&design, &drift);
    assert!(diags.is_empty(), "{diags:?}");
}
