/root/repo/target/debug/deps/table1-7d8b811929bdd8c0.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-7d8b811929bdd8c0.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
