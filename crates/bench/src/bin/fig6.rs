//! Regenerate **Fig. 6** — mean time to process an image vs the size of
//! the batch, for both test cases.
//!
//! The paper streams batches "from 1 up to 1000" and plots up to 50
//! ("as at that point convergence is already reached"). We sweep
//! 1..=50 by default; pass `--full` to also simulate 100 and 1000.
//!
//! ```text
//! cargo run -p dfcnn-bench --release --bin fig6 [-- --full]
//! ```

use dfcnn_bench::{fig6_sweep, quick_test_case_1, quick_test_case_2, write_json, TestCase};
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    name: String,
    paper_converged_us: f64,
    points: Vec<(usize, f64)>,
    converged_us: f64,
    paper_layer_count: usize,
}

fn run_case(tc: &TestCase, paper_converged_us: f64, full: bool) -> Series {
    let mut batches: Vec<usize> = (1..=20).collect();
    batches.extend([25, 30, 40, 50]);
    if full {
        batches.extend([100, 1000]);
    }
    let points = fig6_sweep(tc, &batches);
    let converged_us = points.last().unwrap().1;
    Series {
        name: tc.name.to_string(),
        paper_converged_us,
        points,
        converged_us,
        paper_layer_count: tc.design.paper_depth(),
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let cases = [(quick_test_case_1(), 5.8), (quick_test_case_2(), 128.1)];
    println!("== Fig. 6: mean time per image vs batch size ==\n");
    let mut series = Vec::new();
    for (tc, paper) in &cases {
        let s = run_case(tc, *paper, full);
        println!(
            "{} ({} paper layers; paper converges to ~{} µs):",
            s.name, s.paper_layer_count, s.paper_converged_us
        );
        println!("{:>8} {:>16}", "batch", "mean µs/image");
        for (b, us) in &s.points {
            let marker = if *b == s.paper_layer_count {
                "  <- batch = #layers"
            } else {
                ""
            };
            println!("{b:>8} {us:>16.3}{marker}");
        }
        println!(
            "converged: {:.3} µs/image (paper: {} µs) — ratio {:.2}x\n",
            s.converged_us,
            s.paper_converged_us,
            s.paper_converged_us / s.converged_us
        );
        series.push(s);
    }
    // the headline shape claims
    for s in &series {
        let first = s.points[0].1;
        assert!(
            s.converged_us < first,
            "{}: batching must reduce mean time",
            s.name
        );
        // convergence at batch > #layers: by twice the layer count the
        // curve must have recovered most of the batch-1 penalty …
        let at_knee = s
            .points
            .iter()
            .find(|(b, _)| *b >= 2 * s.paper_layer_count)
            .unwrap()
            .1;
        let recovered = (first - at_knee) / (first - s.converged_us);
        assert!(
            recovered > 0.8,
            "{}: knee too late — only {:.0}% of the batch-1 penalty recovered \
             by batch = 2 x layers",
            s.name,
            recovered * 100.0
        );
        // … and the residual tail is the expected ~latency/n hyperbola
        let near = at_knee;
        assert!(
            (near - s.converged_us).abs() / s.converged_us < 0.20,
            "{}: convergence knee should sit near the layer count",
            s.name
        );
    }
    println!("shape checks passed: monotone decrease, knee at batch ≈ #layers");
    write_json("fig6", &series);
}
