/root/repo/target/release/deps/golden_trace-643c61a13433bc36.d: tests/golden_trace.rs

/root/repo/target/release/deps/golden_trace-643c61a13433bc36: tests/golden_trace.rs

tests/golden_trace.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
