//! The CNN layer zoo of §II-A, as a closed enum.
//!
//! A network is a chain of these layers (Fig. 1): convolution and
//! sub-sampling in the *features extraction* stage, linear (perceptron)
//! layers plus the LogSoftMax normalisation operator in the
//! *classification* stage. `Flatten` is the (data-free) seam between the
//! two stages: with channel-fastest storage it is a pure reshape, exactly
//! like the accelerator where the conv/FC boundary is just a stream.

mod conv;
mod flatten;
mod linear;
mod pool;
mod scaleshift;
mod softmax;

pub use conv::{Conv2d, ConvGrads};
pub use flatten::Flatten;
pub use linear::{Linear, LinearGrads};
pub use pool::{Pool2d, PoolKind};
pub use scaleshift::ScaleShift;
pub use softmax::LogSoftmax;

use dfcnn_tensor::{Shape3, Tensor3};

/// A single network layer.
#[derive(Clone, Debug)]
pub enum Layer {
    /// Convolutional layer (paper Eq. 1).
    Conv(Conv2d),
    /// Sub-sampling / pooling layer.
    Pool(Pool2d),
    /// Reshape `H × W × C` to `1 × 1 × (H·W·C)` in stream order.
    Flatten(Flatten),
    /// Fully-connected (perceptron) layer (paper Eq. 2).
    Linear(Linear),
    /// LogSoftMax normalisation operator (paper Eq. 3).
    LogSoftmax(LogSoftmax),
    /// Per-feature-map affine map (frozen batch normalisation).
    ScaleShift(ScaleShift),
}

impl Layer {
    /// Run the layer forward.
    pub fn forward(&self, input: &Tensor3<f32>) -> Tensor3<f32> {
        match self {
            Layer::Conv(l) => l.forward(input),
            Layer::Pool(l) => l.forward(input),
            Layer::Flatten(l) => l.forward(input),
            Layer::Linear(l) => l.forward(input),
            Layer::LogSoftmax(l) => l.forward(input),
            Layer::ScaleShift(l) => l.forward(input),
        }
    }

    /// Shape of the layer's output given its configured input shape.
    pub fn output_shape(&self) -> Shape3 {
        match self {
            Layer::Conv(l) => l.output_shape(),
            Layer::Pool(l) => l.output_shape(),
            Layer::Flatten(l) => l.output_shape(),
            Layer::Linear(l) => l.output_shape(),
            Layer::LogSoftmax(l) => l.output_shape(),
            Layer::ScaleShift(l) => l.output_shape(),
        }
    }

    /// Shape of the input the layer was configured for.
    pub fn input_shape(&self) -> Shape3 {
        match self {
            Layer::Conv(l) => l.geometry().input,
            Layer::Pool(l) => l.geometry().input,
            Layer::Flatten(l) => l.input_shape(),
            Layer::Linear(l) => Shape3::new(1, 1, l.inputs()),
            Layer::LogSoftmax(l) => Shape3::new(1, 1, l.classes()),
            Layer::ScaleShift(l) => l.shape(),
        }
    }

    /// Whether this layer carries trainable parameters.
    pub fn has_params(&self) -> bool {
        matches!(self, Layer::Conv(_) | Layer::Linear(_))
    }

    /// Human-readable kind, used in block diagrams and reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Layer::Conv(_) => "conv",
            Layer::Pool(p) => match p.kind() {
                PoolKind::Max => "maxpool",
                PoolKind::Mean => "meanpool",
            },
            Layer::Flatten(_) => "flatten",
            Layer::Linear(_) => "linear",
            Layer::LogSoftmax(_) => "logsoftmax",
            Layer::ScaleShift(_) => "scaleshift",
        }
    }
}

impl From<Conv2d> for Layer {
    fn from(l: Conv2d) -> Self {
        Layer::Conv(l)
    }
}

impl From<Pool2d> for Layer {
    fn from(l: Pool2d) -> Self {
        Layer::Pool(l)
    }
}

impl From<Flatten> for Layer {
    fn from(l: Flatten) -> Self {
        Layer::Flatten(l)
    }
}

impl From<Linear> for Layer {
    fn from(l: Linear) -> Self {
        Layer::Linear(l)
    }
}

impl From<LogSoftmax> for Layer {
    fn from(l: LogSoftmax) -> Self {
        Layer::LogSoftmax(l)
    }
}

impl From<ScaleShift> for Layer {
    fn from(l: ScaleShift) -> Self {
        Layer::ScaleShift(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfcnn_tensor::Shape3;

    #[test]
    fn kind_names() {
        let flat = Layer::Flatten(Flatten::new(Shape3::new(2, 2, 3)));
        assert_eq!(flat.kind_name(), "flatten");
        assert!(!flat.has_params());
        assert_eq!(flat.input_shape(), Shape3::new(2, 2, 3));
        assert_eq!(flat.output_shape(), Shape3::new(1, 1, 12));
    }
}
