/root/repo/target/debug/deps/golden_trace-2c13d17948735f3c.d: tests/golden_trace.rs

/root/repo/target/debug/deps/golden_trace-2c13d17948735f3c: tests/golden_trace.rs

tests/golden_trace.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
