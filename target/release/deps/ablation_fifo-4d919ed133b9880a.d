/root/repo/target/release/deps/ablation_fifo-4d919ed133b9880a.d: crates/bench/src/bin/ablation_fifo.rs

/root/repo/target/release/deps/ablation_fifo-4d919ed133b9880a: crates/bench/src/bin/ablation_fifo.rs

crates/bench/src/bin/ablation_fifo.rs:
