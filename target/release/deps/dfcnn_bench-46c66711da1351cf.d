/root/repo/target/release/deps/dfcnn_bench-46c66711da1351cf.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdfcnn_bench-46c66711da1351cf.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdfcnn_bench-46c66711da1351cf.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
