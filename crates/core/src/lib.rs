//! # dfcnn-core
//!
//! The paper's primary contribution, reproduced in Rust: a **modular,
//! scalable dataflow implementation of CNN inference** in the style of an
//! FPGA accelerator built from Streaming Stencil Timestep (SST) memory
//! systems and pipelined HLS compute cores.
//!
//! ## What lives here
//!
//! | Paper concept (§IV) | Module |
//! |---|---|
//! | FIFO channels between filters and cores | [`stream`] |
//! | SST *memory structure* (filter chains + window registers, full buffering) | [`sst`] |
//! | FM interleaving over ports, demux core, widened-filter adapter | [`port`] |
//! | Convolution / sub-sampling / FC compute cores (Algorithm 1, Eq. 4) | [`layer`] |
//! | One definition per layer kind (validation, II, compute, actor, HLS, cost) | [`model`] |
//! | Hardware-order numerics (tree adder, interleaved accumulators) | [`kernel`] |
//! | DMA source & score sink (the §V-A test harness) | [`endpoints`] |
//! | Network construction, port-width cases, FIFO sizing (§IV-C) | [`graph`] |
//! | Cycle-accurate execution, the Fig. 6 measurement | [`sim`] |
//! | Threaded streaming engine (one thread per layer, real pipelining) | [`exec`] |
//! | Functional verification against the `dfcnn-nn` reference | [`verify`] |
//! | Design-space exploration over port configurations (the paper's future work) | [`dse`] |
//! | Multi-FPGA pipeline partitioning (§VI future work) | [`multi`] |
//! | Static value-range analysis (saturation & accumulator proofs) | [`range`] |
//! | Event tracing, stall taxonomy, Perfetto export | [`trace`] |
//! | Flight-recorder analysis: drift & run reports | [`observe`] |
//! | Static design verifier (deadlock, buffers, rates, replication) | [`check`] |
//!
//! ## Two engines, one graph
//!
//! The same [`graph::NetworkDesign`] drives two executions:
//!
//! 1. [`sim::Simulator`] — a cycle-level model: every port moves at most one
//!    32-bit value per 100 MHz cycle, every compute core initiates at its
//!    Eq. 4 interval and carries its HLS pipeline depth, every FIFO applies
//!    backpressure. This produces Fig. 6 (mean time per image vs batch
//!    size) and the latency/throughput columns of Table II. Crucially it is
//!    also *functionally exact*: the values it computes use the hardware
//!    summation orders (tree adders, interleaved accumulators).
//! 2. [`exec::ThreadedEngine`] — one OS thread per layer connected by
//!    bounded channels, the same dataflow graph at image granularity. It
//!    computes bit-identical outputs (same [`kernel`] numerics) and
//!    demonstrates the high-level pipeline as real wall-clock speedup on
//!    batches.

pub mod check;
pub mod codegen;
pub mod dse;
pub mod endpoints;
pub mod exec;
pub mod flow;
pub mod graph;
pub mod kernel;
pub mod layer;
pub mod model;
pub mod multi;
pub mod observe;
pub mod port;
pub mod range;
pub mod sim;
pub mod sst;
pub mod stream;
pub mod trace;
pub mod verify;

pub use check::{
    check_design, check_drift, check_network, check_replication, CheckReport, DesignDiagnostic,
    RuleId, Severity,
};
pub use exec::{ExecResult, PipelineProfile, ReplicationPlan, StageProfile, ThreadedEngine};
pub use graph::{
    build_graph_design, DesignConfig, EdgeInfo, GraphBuilder, LayerPorts, NetworkDesign, NodeRef,
    PortConfig, StageInput, StageNode, Tap,
};
pub use model::{host_pipeline, reference_forward, HostStage};
pub use observe::live::{
    CellCounters, LiveMetrics, MetricCell, MetricUnit, MetricsSnapshot, Sampler, SpawnedSampler,
    StageDelta,
};
pub use observe::{DriftReport, RunReport, SCHEMA_VERSION};
pub use range::{analyze, analyze_with, observe_ranges, recommend_frac, Interval, RangeReport};
pub use sim::{DeadlockReport, SimError, SimResult, Simulator};
