//! Offline JSON front-end for the workspace serde shim: renders the
//! shim's `Value` tree to JSON text (`to_string`, `to_string_pretty`)
//! and parses JSON back into it (`from_str`), matching serde_json's
//! public API for the call sites this repository has.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;
pub type Result<T> = std::result::Result<T, Error>;

/// Render compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Render human-readable JSON (two-space indents).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any shim-deserialisable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// -------------------------------------------------------------- writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Debug formatting keeps a decimal point / exponent, so
                // floats survive a round-trip as floats
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            write_bracketed(out, indent, depth, '[', ']', items.len(), |out, i| {
                write_value(out, &items[i], indent, depth + 1)
            })
        }
        Value::Map(pairs) => {
            write_bracketed(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                let (k, val) = &pairs[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)
            })
        }
    }
}

fn write_bracketed(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    Error(format!("bad \\u escape at byte {}", self.pos))
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| Error(format!("bad \\u escape: {e}")))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("invalid codepoint \\u{hex}")))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let v: Vec<(String, f64)> = vec![("a".into(), 1.5), ("b\n".into(), -2.0)];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, f64)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_keep_their_floatness() {
        let json = to_string(&vec![1.0f32, 0.5]).unwrap();
        assert_eq!(json, "[1.0,0.5]");
        let back: Vec<f32> = from_str(&json).unwrap();
        assert_eq!(back, vec![1.0, 0.5]);
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parses_nested_maps_with_escapes() {
        let src = r#"{"name":"a\"b","inner":{"xs":[1,-2,3.5],"flag":true,"none":null}}"#;
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        let v = p.value().unwrap();
        assert_eq!(v.field("name").unwrap(), &Value::Str("a\"b".to_string()));
        let inner = v.field("inner").unwrap();
        assert_eq!(
            inner.field("xs").unwrap(),
            &Value::Seq(vec![Value::U64(1), Value::I64(-2), Value::F64(3.5)])
        );
        assert_eq!(inner.field("none").unwrap(), &Value::Null);
    }
}
