//! Static value-range audit of the reference designs (DESIGN.md §2k).
//!
//! Runs the abstract-interpretation analyzer (`dfcnn_core::range`) over
//! both trained paper test cases plus the graph presets (ResNet-8 mini,
//! Inception cell), across every supported numeric format, and records
//! per-design verdicts: clean/saturating, worst headroom, accumulator
//! bits, the `value-range` / `accumulator-width` diagnostic counts, and
//! the maximal FRAC `recommend_frac` proves safe at each storage width.
//!
//! Every analysis is cross-checked dynamically: the design's test images
//! stream through the host pipeline and each stage's observed min/max
//! must lie inside the static interval. Results go to
//! `results/range_audit.json` and `BENCH_range.json` (the committed CI
//! artifact). In release builds two contracts are enforced:
//!
//! * **soundness** — observed ⊆ static on every (design, format) pair,
//!   including formats the checker rejects (saturating kernels clamp
//!   into the container and the transfers model exactly that);
//! * **prediction** — the q8f6 accuracy collapse measured in
//!   `BENCH_kernels.json` is flagged by the `value-range` rule on both
//!   paper designs, while q16f8 checks clean.
//!
//! ```text
//! cargo run -p dfcnn-bench --release --bin range_audit
//! ```

use dfcnn_bench::{build_test_case_1, build_test_case_2, write_json, SEED};
use dfcnn_core::check::{check_design, RuleId, Severity};
use dfcnn_core::graph::{build_graph_design, DesignConfig, NetworkDesign, PortConfig};
use dfcnn_core::range::{analyze, observe_ranges, recommend_frac, SCHEMA_VERSION};
use dfcnn_nn::topology::GraphSpec;
use dfcnn_tensor::{init::random_volume, NumericSpec, Shape3, Tensor3};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// Slack allowed between an observed f32 extremum and the static bound.
const OBSERVE_TOL: f64 = 1e-6;

/// One analyzed (design, numeric format) pair.
#[derive(Serialize)]
struct AuditRow {
    case: String,
    numeric: String,
    /// No saturation possible and every accumulator provably fits i64.
    clean: bool,
    cores: usize,
    /// Cores whose pre-saturation interval escapes the container.
    saturating: Vec<String>,
    /// Smallest headroom across cores (negative when saturating).
    worst_headroom_bits: Option<f64>,
    /// Largest proven `log2 |accumulator|` across MAC cores.
    max_acc_bits: Option<f64>,
    value_range_errors: usize,
    value_range_warnings: usize,
    accumulator_errors: usize,
    /// Stages whose observed range was checked against the static one.
    observed_stages: usize,
    /// Whether every observed range stayed inside its static interval.
    observed_sound: bool,
}

/// `recommend_frac` verdict for one design at one storage width.
#[derive(Serialize)]
struct FracRow {
    case: String,
    storage_bits: u32,
    recommended_frac: Option<u32>,
}

#[derive(Serialize)]
struct Record {
    schema_version: u32,
    release: bool,
    rows: Vec<AuditRow>,
    recommendations: Vec<FracRow>,
}

/// A named reference design family: rebuild with any numeric format.
struct Case {
    name: String,
    build: Box<dyn Fn(NumericSpec) -> NetworkDesign>,
    images: Vec<Tensor3<f32>>,
}

fn design_config(numeric: NumericSpec) -> DesignConfig {
    DesignConfig {
        numeric,
        ..DesignConfig::default()
    }
}

fn cases() -> Vec<Case> {
    let mut cases = Vec::new();
    for (tc, ports) in [
        (build_test_case_1(200), PortConfig::paper_test_case_1()),
        (build_test_case_2(200), PortConfig::paper_test_case_2()),
    ] {
        println!(
            "[trained {} — f32 test accuracy {:.1}%]",
            tc.name,
            100.0 * tc.test_accuracy
        );
        let network = tc.network;
        cases.push(Case {
            name: tc.name.to_string(),
            build: Box::new(move |numeric| {
                NetworkDesign::new(&network, ports.clone(), design_config(numeric))
                    .expect("paper design must build")
            }),
            images: tc.images.into_iter().take(4).collect(),
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ 0x2b);
    for (name, gspec) in [
        (
            "resnet8-mini",
            GraphSpec::resnet8(Shape3::new(8, 8, 3), [2, 4, 4], 4),
        ),
        ("inception-cell", GraphSpec::inception_cell()),
    ] {
        let layers = gspec.build_layers(&mut rng);
        let ports = PortConfig::single_port(gspec.paper_depth());
        let mut irng = ChaCha8Rng::seed_from_u64(SEED ^ 0x2c);
        let images = (0..4)
            .map(|_| random_volume(&mut irng, gspec.input, 0.0, 1.0))
            .collect();
        cases.push(Case {
            name: name.to_string(),
            build: Box::new(move |numeric| {
                build_graph_design(&gspec, &layers, &ports, design_config(numeric))
                    .expect("preset design must build")
            }),
            images,
        });
    }
    cases
}

/// Stream the case's images and count stages violating their static
/// interval; panics (release) or warns (debug) are decided by the caller.
fn soundness(design: &NetworkDesign, images: &[Tensor3<f32>]) -> (usize, usize) {
    let report = analyze(design);
    let observed = observe_ranges(design, images);
    let mut matched = 0;
    let mut violations = 0;
    for o in &observed {
        let Some(c) = report.core(&o.name) else {
            continue;
        };
        matched += 1;
        if f64::from(o.lo) < c.out_lo - OBSERVE_TOL || f64::from(o.hi) > c.out_hi + OBSERVE_TOL {
            violations += 1;
            eprintln!(
                "[violation] {}: observed [{}, {}] escapes static [{}, {}] ({})",
                o.name, o.lo, o.hi, c.out_lo, c.out_hi, report.numeric
            );
        }
    }
    (matched, violations)
}

fn audit(case: &Case, numeric: NumericSpec) -> AuditRow {
    let design = (case.build)(numeric);
    let report = analyze(&design);
    let check = check_design(&design);
    let count = |severity: Severity, rule: RuleId| {
        check
            .diagnostics
            .iter()
            .filter(|d| d.severity == severity && d.rule == rule)
            .count()
    };
    let (observed_stages, violations) = soundness(&design, &case.images);
    AuditRow {
        case: case.name.clone(),
        numeric: numeric.label(),
        clean: report.is_clean(),
        cores: report.cores.len(),
        saturating: report
            .cores
            .iter()
            .filter(|c| c.saturation_possible)
            .map(|c| c.name.clone())
            .collect(),
        worst_headroom_bits: report
            .cores
            .iter()
            .filter_map(|c| c.headroom_bits)
            .min_by(f64::total_cmp),
        max_acc_bits: report
            .cores
            .iter()
            .filter_map(|c| c.acc_bits)
            .max_by(f64::total_cmp),
        value_range_errors: count(Severity::Error, RuleId::ValueRange),
        value_range_warnings: count(Severity::Warning, RuleId::ValueRange),
        accumulator_errors: count(Severity::Error, RuleId::AccumulatorWidth),
        observed_stages,
        observed_sound: violations == 0,
    }
}

fn main() {
    let release = !cfg!(debug_assertions);
    let cases = cases();

    let mut rows = Vec::new();
    let mut recommendations = Vec::new();
    for case in &cases {
        for numeric in NumericSpec::supported() {
            rows.push(audit(case, numeric));
        }
        let probe = (case.build)(NumericSpec::F32);
        for storage_bits in [16u32, 8] {
            recommendations.push(FracRow {
                case: case.name.clone(),
                storage_bits,
                recommended_frac: recommend_frac(&probe, storage_bits),
            });
        }
    }

    println!(
        "\n{:<16} {:<6} {:>6} {:>9} {:>8} {:>7} {:>6}",
        "case", "spec", "clean", "headroom", "acc_bits", "errors", "sound"
    );
    for r in &rows {
        println!(
            "{:<16} {:<6} {:>6} {:>9} {:>8} {:>7} {:>6}",
            r.case,
            r.numeric,
            r.clean,
            r.worst_headroom_bits
                .map_or_else(|| "-".into(), |h| format!("{h:.2}")),
            r.max_acc_bits
                .map_or_else(|| "-".into(), |b| format!("{b:.1}")),
            r.value_range_errors + r.accumulator_errors,
            r.observed_sound,
        );
    }
    for f in &recommendations {
        println!(
            "[recommend] {:<16} {:>2}-bit storage -> frac {}",
            f.case,
            f.storage_bits,
            f.recommended_frac
                .map_or_else(|| "none".into(), |f| f.to_string()),
        );
    }

    let record = Record {
        schema_version: SCHEMA_VERSION,
        release,
        rows,
        recommendations,
    };
    write_json("range_audit", &record);
    match std::fs::write(
        "BENCH_range.json",
        serde_json::to_string_pretty(&record).unwrap(),
    ) {
        Ok(()) => println!("[written BENCH_range.json]"),
        Err(e) => eprintln!("[warn] could not write BENCH_range.json: {e}"),
    }

    // CI smoke contracts (release builds only): every observed range must
    // stay inside its static interval, and the measured q8f6 collapse
    // must be predicted while q16f8 stays clean on the paper designs.
    if release {
        for r in &record.rows {
            assert!(
                r.observed_sound,
                "{} under {}: observed range escaped the static interval",
                r.case, r.numeric
            );
        }
        for r in &record.rows {
            let paper = r.case.starts_with("Test Case");
            if paper && r.numeric == "q8f6" {
                assert!(
                    r.value_range_errors > 0,
                    "{}: q8f6 collapse not predicted by value-range",
                    r.case
                );
            }
            if paper && (r.numeric == "q16f8" || r.numeric == "f32") {
                assert!(
                    r.clean && r.value_range_errors == 0,
                    "{}: {} must check clean",
                    r.case,
                    r.numeric
                );
            }
        }
        println!("[release contracts hold: soundness + q8f6 prediction]");
    }
}
