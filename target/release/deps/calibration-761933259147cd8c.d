/root/repo/target/release/deps/calibration-761933259147cd8c.d: crates/bench/src/bin/calibration.rs

/root/repo/target/release/deps/calibration-761933259147cd8c: crates/bench/src/bin/calibration.rs

crates/bench/src/bin/calibration.rs:
