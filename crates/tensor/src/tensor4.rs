//! Filter banks: `K` filters of `KH × KW × C` weights (paper Eq. 1).

use crate::shape::Shape3;
use crate::Element;

/// A bank of `k` convolution filters, each `kh × kw × c`.
///
/// Layout is filter-major, then row-major with channel fastest inside each
/// filter — i.e. filter `k`'s weights appear in the same stream order as the
/// windows the SST memory system delivers, so the compute core can multiply
/// window and weight buffers element-by-element exactly as Algorithm 1 does
/// (`buf ← buf · weights`).
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor4<T = f32> {
    k: usize,
    kh: usize,
    kw: usize,
    c: usize,
    data: Vec<T>,
}

impl<T: Element> Tensor4<T> {
    /// Zero-filled filter bank.
    pub fn zeros(k: usize, kh: usize, kw: usize, c: usize) -> Self {
        assert!(
            k > 0 && kh > 0 && kw > 0 && c > 0,
            "extents must be non-zero"
        );
        Tensor4 {
            k,
            kh,
            kw,
            c,
            data: vec![T::zero(); k * kh * kw * c],
        }
    }

    /// Build from a generator invoked as `f(k, y, x, c)`.
    pub fn from_fn(
        k: usize,
        kh: usize,
        kw: usize,
        c: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> T,
    ) -> Self {
        let mut data = Vec::with_capacity(k * kh * kw * c);
        for fk in 0..k {
            for y in 0..kh {
                for x in 0..kw {
                    for ch in 0..c {
                        data.push(f(fk, y, x, ch));
                    }
                }
            }
        }
        Tensor4 { k, kh, kw, c, data }
    }

    /// Wrap an existing buffer in filter-major / channel-fastest order.
    pub fn from_vec(k: usize, kh: usize, kw: usize, c: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            k * kh * kw * c,
            "buffer length {} does not match {}x{}x{}x{}",
            data.len(),
            k,
            kh,
            kw,
            c
        );
        Tensor4 { k, kh, kw, c, data }
    }

    /// Number of filters (`K`, output feature maps).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }
    /// Window height (`KH`).
    #[inline]
    pub fn kh(&self) -> usize {
        self.kh
    }
    /// Window width (`KW`).
    #[inline]
    pub fn kw(&self) -> usize {
        self.kw
    }
    /// Input channels covered by each filter (`C`).
    #[inline]
    pub fn c(&self) -> usize {
        self.c
    }

    /// Total number of weights.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the bank holds no weights (never true after construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn index(&self, k: usize, y: usize, x: usize, c: usize) -> usize {
        debug_assert!(k < self.k && y < self.kh && x < self.kw && c < self.c);
        ((k * self.kh + y) * self.kw + x) * self.c + c
    }

    /// Weight of filter `k` at window position `(y, x)` channel `c`.
    #[inline]
    pub fn get(&self, k: usize, y: usize, x: usize, c: usize) -> T {
        self.data[self.index(k, y, x, c)]
    }

    /// Set a weight.
    #[inline]
    pub fn set(&mut self, k: usize, y: usize, x: usize, c: usize, v: T) {
        let i = self.index(k, y, x, c);
        self.data[i] = v;
    }

    /// Mutable weight access.
    #[inline]
    pub fn get_mut(&mut self, k: usize, y: usize, x: usize, c: usize) -> &mut T {
        let i = self.index(k, y, x, c);
        &mut self.data[i]
    }

    /// The weights of one filter as a contiguous slice in window stream
    /// order (`kh * kw * c` scalars). This is what the compute core keeps
    /// "hardcoded in on-chip memory" (§IV-A).
    #[inline]
    pub fn filter(&self, k: usize) -> &[T] {
        let stride = self.kh * self.kw * self.c;
        &self.data[k * stride..(k + 1) * stride]
    }

    /// The shape of a single filter as a [`Shape3`].
    pub fn filter_shape(&self) -> Shape3 {
        Shape3::new(self.kh, self.kw, self.c)
    }

    /// Whole backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Convert every weight to `f32`.
    pub fn to_f32(&self) -> Tensor4<f32> {
        Tensor4 {
            k: self.k,
            kh: self.kh,
            kw: self.kw,
            c: self.c,
            data: self.data.iter().map(|v| v.to_f32()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_slice_matches_gets() {
        let t = Tensor4::from_fn(2, 3, 3, 2, |k, y, x, c| {
            (k * 1000 + y * 100 + x * 10 + c) as f32
        });
        let f1 = t.filter(1);
        assert_eq!(f1.len(), 18);
        let mut i = 0;
        for y in 0..3 {
            for x in 0..3 {
                for c in 0..2 {
                    assert_eq!(f1[i], t.get(1, y, x, c));
                    i += 1;
                }
            }
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut t = Tensor4::<f32>::zeros(2, 2, 2, 2);
        t.set(1, 1, 0, 1, 9.0);
        assert_eq!(t.get(1, 1, 0, 1), 9.0);
        assert_eq!(t.get(0, 1, 0, 1), 0.0);
    }

    #[test]
    fn filter_shape_is_window_shape() {
        let t = Tensor4::<f32>::zeros(6, 5, 5, 1);
        assert_eq!(t.filter_shape(), Shape3::new(5, 5, 1));
        assert_eq!(t.len(), 150);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_length() {
        Tensor4::<f32>::from_vec(1, 2, 2, 1, vec![0.0; 5]);
    }
}
